//! # `lmm-engine` — the unified ranking API
//!
//! The paper's central claim (Wu & Aberer, ICDCS 2005) is that four
//! ranking approaches and several deployment architectures compute
//! *interchangeable* rankings over the same Web graph. This crate turns
//! that claim into an API:
//!
//! * [`Ranker`] — the pluggable strategy trait. Every existing path is one
//!   implementation: [`FlatPageRank`] (Approach 1's Web instantiation),
//!   [`CentralizedStationary`] (Approach 2 through the factored global
//!   operator), [`LayeredRanker`] (Approaches 3/4 via
//!   `lmm_core::siterank`), [`DistributedRanker`] (every
//!   `lmm_p2p::Architecture`), and [`IncrementalRanker`] (incremental
//!   maintenance). Future backends — sharded, async, remote — are drop-in
//!   implementations.
//! * [`RankEngine::builder`] — one fluent, validated builder unifying the
//!   scattered knobs (`LmmParams`, `LayeredRankConfig`,
//!   `DistributedConfig`, `PowerOptions`, `SiteGraphOptions`) into an
//!   [`EngineConfig`], with a shared [`ExecContext`] carrying the
//!   convergence policy, personalization vectors, and a telemetry sink.
//! * A **query-serving layer**: [`RankEngine::rank`] caches the resulting
//!   ranking and serves [`top_k`](RankEngine::top_k),
//!   [`top_k_for_site`](RankEngine::top_k_for_site),
//!   [`score`](RankEngine::score), and [`compare`](RankEngine::compare)
//!   without recomputation.
//! * **Live graph mutation**: [`RankEngine::apply_delta`] streams a
//!   structural [`lmm_graph::delta::GraphDelta`] (links, pages, whole
//!   sites) through the incremental backend, recomputing only the stale
//!   sites and refreshing the serving cache in place — with an O(delta)
//!   composed [`GraphFingerprint`] instead of a full re-hash.
//! * **Serving snapshots**: every fresh computation advances a monotone
//!   epoch and produces an immutable [`RankSnapshot`] (scores, site layer,
//!   memberships behind `Arc`s) plus a [`Staleness`] set naming the sites
//!   whose scores moved — the hand-off unit the sharded `lmm-serve` tier
//!   uses to rebuild only the shards a delta touched.
//!
//! # Quickstart
//!
//! ```
//! use lmm_engine::{BackendSpec, RankEngine};
//! use lmm_graph::generator::CampusWebConfig;
//! use lmm_core::siterank::SiteLayerMethod;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cfg = CampusWebConfig::small();
//! cfg.total_docs = 400;
//! cfg.n_sites = 8;
//! cfg.spam_farms.clear();
//! let graph = cfg.generate()?;
//!
//! // The Layered Method (Approach 4) through the unified engine.
//! let mut engine = RankEngine::builder()
//!     .backend(BackendSpec::Layered { site_layer: SiteLayerMethod::Stationary })
//!     .damping(0.85)
//!     .tolerance(1e-10)
//!     .build()?;
//! engine.rank(&graph)?;
//!
//! // Serve queries from the cache — no recomputation.
//! let top = engine.top_k(5)?;
//! assert_eq!(top.len(), 5);
//!
//! // Approach 2 (centralized stationary chain) must agree: the Partition
//! // Theorem through the public API.
//! let mut central = RankEngine::builder()
//!     .backend(BackendSpec::CentralizedStationary)
//!     .damping(0.85)
//!     .tolerance(1e-10)
//!     .build()?;
//! central.rank(&graph)?;
//! let cmp = engine.compare(central.outcome()?, 10)?;
//! assert!(cmp.linf < 1e-8);
//! # Ok(())
//! # }
//! ```

pub mod backends;
pub mod bridge;
pub mod context;
pub mod engine;
pub mod error;
pub mod fingerprint;
pub mod outcome;
pub mod ranker;
pub mod snapshot;
pub mod telemetry;

pub use backends::{
    CentralizedStationary, DistributedRanker, FlatPageRank, IncrementalRanker, LayeredRanker,
};
pub use context::{ConvergencePolicy, ExecContext, Personalization};
pub use engine::{BackendSpec, EngineConfig, RankEngine, RankEngineBuilder};
pub use error::{EngineError, Result};
pub use fingerprint::GraphFingerprint;
pub use outcome::{RankComparison, RankOutcome};
pub use ranker::{DeltaOutcome, Ranker};
pub use snapshot::{RankSnapshot, SnapshotSegment, Staleness};
pub use telemetry::{MemorySink, NullSink, RunTelemetry, TelemetrySink};
