//! The built-in [`Ranker`] backends, one per path the paper describes:
//! the flat baseline, the centralized stationary chain, the layered
//! pipelines (Approaches 3/4), the distributed deployments, and
//! incremental maintenance.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::bridge::{model_from_graph, per_site_mass, state_scores_to_doc_order};
use crate::context::ExecContext;
use crate::error::{EngineError, Result};
use crate::outcome::RankOutcome;
use crate::ranker::{DeltaOutcome, Ranker};
use crate::telemetry::RunTelemetry;
use lmm_core::approaches::{compute, LmmParams, RankApproach};
use lmm_core::incremental::{self, SiteDelta, UpdateStats};
use lmm_core::siterank::{self, LayeredDocRank, LayeredRankConfig, SiteLayerMethod};
use lmm_graph::delta::GraphDelta;
use lmm_graph::docgraph::DocGraph;
use lmm_p2p::runner::{run_distributed, Architecture, DistributedConfig};
use lmm_rank::Ranking;

/// Backends that rank the whole slot space (flat PageRank, the factored
/// global chain, the p2p simulator) would hand teleport mass to dead,
/// linkless slots — so they demand a dense graph instead of silently
/// mis-ranking a tombstoned one.
fn require_dense_graph(graph: &DocGraph, backend: &str) -> Result<()> {
    if graph.has_tombstones() {
        return Err(EngineError::InvalidConfig {
            reason: format!(
                "the {backend} backend ranks the full id space and does not \
                 support tombstoned graphs; call DocGraph::compact_ids() first \
                 (the layered and incremental backends handle tombstones natively)"
            ),
        });
    }
    Ok(())
}

fn require_neutral_personalization(ctx: &ExecContext, backend: &str) -> Result<()> {
    if ctx.personalization.is_neutral() {
        Ok(())
    } else {
        Err(EngineError::InvalidConfig {
            reason: format!(
                "the {backend} backend does not support personalization; \
                 use a layered backend (site/document teleport vectors are \
                 a layered-model feature)"
            ),
        })
    }
}

fn layered_config(ctx: &ExecContext, local_damping: f64, site_damping: f64) -> LayeredRankConfig {
    LayeredRankConfig {
        local_damping,
        site_damping,
        site_method: SiteLayerMethod::PageRank,
        site_options: ctx.site_options,
        power: ctx.convergence.power_options(),
        site_personalization: ctx.personalization.site.clone(),
        local_personalization: ctx.personalization.local.clone(),
        threads: ctx.threads,
    }
}

fn outcome_from_layered(
    backend: String,
    result: LayeredDocRank,
    wall: std::time::Duration,
    n_sites: usize,
) -> RankOutcome {
    let telemetry = RunTelemetry {
        backend: backend.clone(),
        site_iterations: result.site_report.iterations,
        residual: result.site_report.residual,
        converged: result.site_report.converged,
        total_local_iterations: result.total_local_iterations,
        max_local_iterations: result.max_local_iterations,
        sites_recomputed: n_sites,
        wall,
        ..RunTelemetry::default()
    };
    RankOutcome {
        backend,
        ranking: result.global,
        site_rank: Some(result.site_rank),
        telemetry,
    }
}

/// Copies incremental cost accounting into run telemetry.
fn apply_stats_to_telemetry(telemetry: &mut RunTelemetry, stats: &UpdateStats) {
    telemetry.sites_recomputed = stats.sites_recomputed;
    telemetry.sites_reused = stats.sites_reused;
    telemetry.sites_grown = stats.sites_grown + stats.sites_added;
    telemetry.sites_shrunk = stats.sites_shrunk;
    telemetry.sites_removed = stats.sites_removed;
}

/// **Approach 1's Web instantiation**: classical PageRank (maximal
/// irreducibility) over the whole document graph — the paper's Figure 3
/// baseline and the centralized system the layered method is contrasted
/// against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatPageRank {
    /// Damping factor of the global chain.
    pub damping: f64,
}

impl Ranker for FlatPageRank {
    fn name(&self) -> String {
        "flat-pagerank".into()
    }

    fn rank(&self, graph: &DocGraph, ctx: &ExecContext) -> Result<RankOutcome> {
        require_dense_graph(graph, "flat-pagerank")?;
        require_neutral_personalization(ctx, "flat-pagerank")?;
        let t0 = Instant::now();
        let result = siterank::flat_pagerank(
            graph,
            self.damping,
            &ctx.convergence.power_options(),
            ctx.threads,
        )?;
        let telemetry = RunTelemetry {
            backend: self.name(),
            site_iterations: result.report.iterations,
            residual: result.report.residual,
            converged: result.report.converged,
            sites_recomputed: graph.n_sites(),
            wall: t0.elapsed(),
            ..RunTelemetry::default()
        };
        Ok(RankOutcome {
            backend: self.name(),
            ranking: result.ranking,
            site_rank: None,
            telemetry,
        })
    }
}

/// **Approach 2**: the stationary distribution of the layer-decomposable
/// global chain `W` induced by the graph, computed through the factored
/// operator (never materializing `W`). By the Partition Theorem this equals
/// the Layered Method's composed DocRank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CentralizedStationary {
    /// Gatekeeper mixing parameter `α` of the per-site chains.
    pub alpha: f64,
}

impl Ranker for CentralizedStationary {
    fn name(&self) -> String {
        "centralized-stationary".into()
    }

    fn rank(&self, graph: &DocGraph, ctx: &ExecContext) -> Result<RankOutcome> {
        require_dense_graph(graph, "centralized-stationary")?;
        if ctx.personalization.site.is_some() {
            return Err(EngineError::InvalidConfig {
                reason: "centralized-stationary has no site-layer teleport vector; \
                         site personalization requires a PageRank site layer"
                    .into(),
            });
        }
        let t0 = Instant::now();
        let model = model_from_graph(graph, ctx)?;
        let params = LmmParams {
            alpha: self.alpha,
            damping: self.alpha,
            power: ctx.convergence.power_options(),
            threads: ctx.threads,
        };
        let global = compute(&model, RankApproach::StationaryOfGlobal, &params)?;
        let ranking = Ranking::from_scores(state_scores_to_doc_order(graph, global.scores()))?;
        let site_rank = Ranking::from_weights(per_site_mass(graph, global.scores()))?;
        let telemetry = RunTelemetry {
            backend: self.name(),
            site_iterations: global.report.iterations,
            residual: global.report.residual,
            converged: global.report.converged,
            sites_recomputed: graph.n_sites(),
            wall: t0.elapsed(),
            ..RunTelemetry::default()
        };
        Ok(RankOutcome {
            backend: self.name(),
            ranking,
            site_rank: Some(site_rank),
            telemetry,
        })
    }
}

/// **Approaches 3 and 4**: the layered SiteRank × DocRank pipeline of
/// Section 3.2 over `lmm_core::siterank`, with the site layer ranked either
/// by damped PageRank (Approach 3; supports personalization) or by the raw
/// stationary distribution (Approach 4 — the Layered Method).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayeredRanker {
    /// Damping of the per-site local DocRanks.
    pub local_damping: f64,
    /// Damping of the site layer (ignored by the stationary method).
    pub site_damping: f64,
    /// How the site layer is ranked.
    pub site_layer: SiteLayerMethod,
}

impl Ranker for LayeredRanker {
    fn name(&self) -> String {
        match self.site_layer {
            SiteLayerMethod::PageRank => "layered-pagerank".into(),
            SiteLayerMethod::Stationary => "layered-stationary".into(),
        }
    }

    fn rank(&self, graph: &DocGraph, ctx: &ExecContext) -> Result<RankOutcome> {
        let t0 = Instant::now();
        let config = LayeredRankConfig {
            site_method: self.site_layer,
            ..layered_config(ctx, self.local_damping, self.site_damping)
        };
        let result = siterank::layered_doc_rank(graph, &config)?;
        Ok(outcome_from_layered(
            self.name(),
            result,
            t0.elapsed(),
            graph.n_sites(),
        ))
    }
}

/// **The distributed deployments** of Section 3.2: the layered protocol
/// over flat P2P or super-peer topologies, the hybrid shared-SiteRank
/// variant, and the centralized upload-everything baseline — all through
/// the `lmm-p2p` simulator, with traffic accounted in telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedRanker {
    /// Deployment topology.
    pub architecture: Architecture,
    /// Damping of the distributed SiteRank iteration.
    pub site_damping: f64,
    /// Damping of the per-site local DocRanks.
    pub local_damping: f64,
}

impl Ranker for DistributedRanker {
    fn name(&self) -> String {
        format!("distributed/{}", self.architecture)
    }

    fn rank(&self, graph: &DocGraph, ctx: &ExecContext) -> Result<RankOutcome> {
        require_dense_graph(graph, "distributed")?;
        require_neutral_personalization(ctx, "distributed")?;
        let t0 = Instant::now();
        let config = DistributedConfig {
            architecture: self.architecture,
            site_damping: self.site_damping,
            local_damping: self.local_damping,
            tol: ctx.convergence.tol,
            max_rounds: u32::try_from(ctx.convergence.max_iters).unwrap_or(u32::MAX),
            site_options: ctx.site_options,
            power: ctx.convergence.power_options(),
            fault: ctx.fault,
            threads: ctx.threads,
        };
        let outcome = run_distributed(graph, &config)?;
        let traffic = outcome.stats.total();
        let telemetry = RunTelemetry {
            backend: self.name(),
            site_iterations: outcome.siterank_rounds as usize,
            converged: true,
            sites_recomputed: graph.n_sites(),
            messages: traffic.messages,
            bytes: traffic.bytes,
            retransmissions: traffic.retransmissions,
            wall: t0.elapsed(),
            ..RunTelemetry::default()
        };
        let site_rank = match outcome.architecture {
            // The centralized baseline never computes a site layer; its
            // uniform placeholder would misread as a real SiteRank.
            Architecture::Centralized => None,
            _ => Some(outcome.site_rank),
        };
        Ok(RankOutcome {
            backend: self.name(),
            ranking: outcome.global,
            site_rank,
            telemetry,
        })
    }
}

/// **Incremental maintenance** over `lmm_core::incremental`: the first call
/// computes the full layered pipeline; every later call diffs the new graph
/// against the previous one and recomputes only the stale layers
/// (warm-started) — including structural growth (pages and sites added) —
/// falling back to a full run when the graphs cannot be diffed (shrinkage,
/// re-partition). It is also the one backend that supports
/// [`Ranker::apply_delta`]: structural [`GraphDelta`]s stream into the
/// maintained state without ever re-diffing the graphs.
#[derive(Debug)]
pub struct IncrementalRanker {
    /// Damping of the per-site local DocRanks.
    pub local_damping: f64,
    /// Damping of the SiteRank computation.
    pub site_damping: f64,
    state: Mutex<Option<(Arc<DocGraph>, LayeredDocRank)>>,
}

impl IncrementalRanker {
    /// Creates a ranker with no previous state.
    #[must_use]
    pub fn new(local_damping: f64, site_damping: f64) -> Self {
        Self {
            local_damping,
            site_damping,
            state: Mutex::new(None),
        }
    }
}

impl Ranker for IncrementalRanker {
    fn name(&self) -> String {
        "incremental".into()
    }

    fn rank(&self, graph: &DocGraph, ctx: &ExecContext) -> Result<RankOutcome> {
        let t0 = Instant::now();
        let config = layered_config(ctx, self.local_damping, self.site_damping);
        let mut state = self.state.lock().expect("incremental state lock");

        // Diff against the previous graph. Only an *undiffable* pair
        // (shrinkage, re-partition — legitimate re-discoveries of the web)
        // falls back to a full recomputation; failures of the incremental
        // update itself (inconsistent retained state, stale
        // personalization, non-convergence) propagate loudly instead of
        // silently degrading every call into a full recompute.
        let delta = state
            .as_ref()
            .and_then(|(old_graph, _)| incremental::diff_sites(old_graph, graph).ok());
        let (result, stats) = match (&*state, delta) {
            (Some((_, previous)), Some(delta)) if delta.is_empty() => (
                previous.clone(),
                UpdateStats {
                    sites_reused: graph.n_sites(),
                    ..UpdateStats::default()
                },
            ),
            (Some((_, previous)), Some(delta)) => {
                incremental::incremental_update(previous, graph, &delta, &config)?
            }
            _ => {
                let result = siterank::layered_doc_rank(graph, &config)?;
                let stats = UpdateStats {
                    sites_recomputed: graph.n_sites(),
                    ..UpdateStats::default()
                };
                (result, stats)
            }
        };
        *state = Some((Arc::new(graph.clone()), result.clone()));

        let mut outcome = outcome_from_layered(self.name(), result, t0.elapsed(), graph.n_sites());
        apply_stats_to_telemetry(&mut outcome.telemetry, &stats);
        Ok(outcome)
    }

    fn apply_delta(&self, delta: &GraphDelta, ctx: &ExecContext) -> Result<DeltaOutcome> {
        let t0 = Instant::now();
        let config = layered_config(ctx, self.local_damping, self.site_damping);
        let mut state = self.state.lock().expect("incremental state lock");
        let (old_graph, previous) = state.as_ref().ok_or(EngineError::NotRanked)?;
        let (new_graph, applied) = old_graph.apply(delta)?;
        let new_graph = Arc::new(new_graph);
        // Fail fast with a config-level error when the engine's fixed
        // personalization no longer fits the grown graph (rank() performs
        // the same check against its input graph).
        ctx.personalization.validate_against_graph(&new_graph)?;
        let site_delta = SiteDelta::from(&applied);
        let (result, stats) = if site_delta.is_empty() {
            (
                previous.clone(),
                UpdateStats {
                    sites_reused: new_graph.n_sites(),
                    ..UpdateStats::default()
                },
            )
        } else {
            incremental::incremental_update(previous, &new_graph, &site_delta, &config)?
        };
        // The graph is Arc-shared between the retained state and the
        // returned outcome — a structural update never deep-copies it.
        *state = Some((Arc::clone(&new_graph), result.clone()));

        let mut outcome =
            outcome_from_layered(self.name(), result, t0.elapsed(), new_graph.n_sites());
        apply_stats_to_telemetry(&mut outcome.telemetry, &stats);
        Ok(DeltaOutcome {
            graph: new_graph,
            applied,
            outcome,
            stats,
        })
    }
}
