//! The uniform result type every backend produces, plus rank-comparison
//! support built on `lmm_rank::metrics`.

use crate::error::{EngineError, Result};
use crate::telemetry::RunTelemetry;
use lmm_graph::{DocId, SiteId};
use lmm_linalg::vec_ops;
use lmm_rank::{metrics, Ranking};

/// Result of one ranking run, uniform across every [`Ranker`](crate::Ranker)
/// backend: a global document ranking in `DocId` order, the site-layer
/// vector when the backend computes one, and run telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct RankOutcome {
    /// Name of the backend that produced this outcome.
    pub backend: String,
    /// The global document ranking (a probability distribution over all
    /// documents, indexed by `DocId`).
    pub ranking: Ranking,
    /// The SiteRank vector `π_S` (absent for backends with no site layer,
    /// such as the flat baseline).
    pub site_rank: Option<Ranking>,
    /// Metrics of the run.
    pub telemetry: RunTelemetry,
}

impl RankOutcome {
    /// Number of ranked documents.
    #[must_use]
    pub fn n_docs(&self) -> usize {
        self.ranking.len()
    }

    /// Global score of one document.
    ///
    /// # Errors
    /// Returns [`EngineError::OutOfRange`] for an unknown document.
    pub fn score(&self, doc: DocId) -> Result<f64> {
        if doc.index() >= self.ranking.len() {
            return Err(EngineError::OutOfRange {
                what: "document",
                index: doc.index(),
                len: self.ranking.len(),
            });
        }
        Ok(self.ranking.score(doc.index()))
    }

    /// SiteRank score of one site, when the backend computed a site layer.
    ///
    /// # Errors
    /// Returns [`EngineError::OutOfRange`] for an unknown site.
    pub fn site_score(&self, site: SiteId) -> Result<Option<f64>> {
        match &self.site_rank {
            None => Ok(None),
            Some(ranks) => {
                if site.index() >= ranks.len() {
                    return Err(EngineError::OutOfRange {
                        what: "site",
                        index: site.index(),
                        len: ranks.len(),
                    });
                }
                Ok(Some(ranks.score(site.index())))
            }
        }
    }

    /// The `k` top-ranked documents with their scores, best first.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(DocId, f64)> {
        self.ranking
            .top_k(k)
            .into_iter()
            .map(|d| (DocId(d), self.ranking.score(d)))
            .collect()
    }

    /// Compares this outcome's ranking against another over the same
    /// document set (Kendall τ, top-`k` overlap, and vector distances).
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidConfig`] when the outcomes rank
    /// different document counts.
    pub fn compare(&self, other: &RankOutcome, k: usize) -> Result<RankComparison> {
        if self.n_docs() != other.n_docs() {
            return Err(EngineError::InvalidConfig {
                reason: format!(
                    "cannot compare rankings over {} and {} documents",
                    self.n_docs(),
                    other.n_docs()
                ),
            });
        }
        Ok(RankComparison {
            backends: (self.backend.clone(), other.backend.clone()),
            kendall_tau: metrics::kendall_tau(&self.ranking, &other.ranking),
            top_k_overlap: metrics::top_k_overlap(&self.ranking, &other.ranking, k),
            k,
            l1: vec_ops::l1_diff(self.ranking.scores(), other.ranking.scores()),
            linf: vec_ops::linf_diff(self.ranking.scores(), other.ranking.scores()),
        })
    }
}

/// How two outcomes' rankings relate.
#[derive(Debug, Clone, PartialEq)]
pub struct RankComparison {
    /// Names of the two compared backends.
    pub backends: (String, String),
    /// Kendall rank correlation over all documents.
    pub kendall_tau: f64,
    /// Fraction of shared documents among the top `k` of both rankings.
    pub top_k_overlap: f64,
    /// The `k` used for the overlap.
    pub k: usize,
    /// L1 distance between the score vectors.
    pub l1: f64,
    /// L∞ distance between the score vectors.
    pub linf: f64,
}

impl std::fmt::Display for RankComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} vs {}: tau {:.4}, top-{} overlap {:.0}%, L1 {:.2e}, Linf {:.2e}",
            self.backends.0,
            self.backends.1,
            self.kendall_tau,
            self.k,
            100.0 * self.top_k_overlap,
            self.l1,
            self.linf,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(backend: &str, scores: Vec<f64>) -> RankOutcome {
        RankOutcome {
            backend: backend.into(),
            ranking: Ranking::from_weights(scores).unwrap(),
            site_rank: None,
            telemetry: RunTelemetry::default(),
        }
    }

    #[test]
    fn identical_outcomes_compare_perfectly() {
        let a = outcome("a", vec![3.0, 2.0, 1.0]);
        let b = outcome("b", vec![3.0, 2.0, 1.0]);
        let cmp = a.compare(&b, 2).unwrap();
        assert!((cmp.kendall_tau - 1.0).abs() < 1e-12);
        assert!((cmp.top_k_overlap - 1.0).abs() < 1e-12);
        assert!(cmp.l1 < 1e-12);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let a = outcome("a", vec![1.0, 2.0]);
        let b = outcome("b", vec![1.0, 2.0, 3.0]);
        assert!(a.compare(&b, 1).is_err());
    }

    #[test]
    fn score_bounds_checked() {
        let a = outcome("a", vec![1.0, 2.0]);
        assert!(a.score(DocId(1)).is_ok());
        assert!(a.score(DocId(2)).is_err());
        assert_eq!(a.site_score(SiteId(0)).unwrap(), None);
    }

    #[test]
    fn top_k_is_sorted() {
        let a = outcome("a", vec![1.0, 5.0, 3.0]);
        let top = a.top_k(3);
        assert_eq!(top[0].0, DocId(1));
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }
}
