//! The shared execution context: convergence policy, personalization, and
//! telemetry, carried uniformly into every backend.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::telemetry::{NullSink, TelemetrySink};
use lmm_graph::sitegraph::SiteGraphOptions;
use lmm_linalg::PowerOptions;
use lmm_p2p::FaultConfig;

/// Convergence policy shared by every stationary computation an engine
/// runs: the per-site local DocRanks, the SiteRank, the global chain of the
/// centralized approaches, and the round budget of distributed runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePolicy {
    /// L1 residual tolerance.
    pub tol: f64,
    /// Iteration (power method) and round (distributed) budget.
    pub max_iters: usize,
}

impl Default for ConvergencePolicy {
    fn default() -> Self {
        Self {
            tol: 1e-10,
            max_iters: 10_000,
        }
    }
}

impl ConvergencePolicy {
    /// The equivalent power-method options.
    #[must_use]
    pub fn power_options(&self) -> PowerOptions {
        PowerOptions::with_tol(self.tol).max_iters(self.max_iters)
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if !self.tol.is_finite() || self.tol <= 0.0 {
            return Err(EngineError::InvalidConfig {
                reason: format!("tolerance {} must be finite and positive", self.tol),
            });
        }
        if self.max_iters == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "iteration budget must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Personalization at both layers of the layered model (Section 3.2, last
/// paragraphs): a site-layer teleport vector and per-site document vectors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Personalization {
    /// Site-layer teleport vector (length = number of sites), or `None`
    /// for uniform teleportation.
    pub site: Option<Vec<f64>>,
    /// Per-site document teleport vectors, keyed by site index; each
    /// vector is over the site's *local* document indices.
    pub local: HashMap<usize, Vec<f64>>,
}

impl Personalization {
    /// `true` when no personalization is set at either layer.
    #[must_use]
    pub fn is_neutral(&self) -> bool {
        self.site.is_none() && self.local.is_empty()
    }

    pub(crate) fn validate(&self) -> Result<()> {
        let check = |label: &str, v: &[f64]| -> Result<()> {
            if v.is_empty() {
                return Err(EngineError::InvalidConfig {
                    reason: format!("{label} personalization vector is empty"),
                });
            }
            if v.iter().any(|&x| !x.is_finite() || x < 0.0) {
                return Err(EngineError::InvalidConfig {
                    reason: format!("{label} personalization vector has negative entries"),
                });
            }
            if v.iter().sum::<f64>() <= 0.0 {
                return Err(EngineError::InvalidConfig {
                    reason: format!("{label} personalization vector sums to zero"),
                });
            }
            Ok(())
        };
        if let Some(v) = &self.site {
            check("site-layer", v)?;
        }
        for (site, v) in &self.local {
            check(&format!("site {site} document-layer"), v)?;
        }
        Ok(())
    }

    /// Validates the vectors against a concrete graph's shape: the
    /// site-layer vector must cover every site, and every document-layer
    /// key must name an existing site with a vector of its size. The
    /// builder cannot check this (no graph yet), so the engine does at
    /// rank time — a silently ignored personalization entry would
    /// otherwise serve a neutral ranking the caller believes personalized.
    pub(crate) fn validate_against_graph(
        &self,
        graph: &lmm_graph::docgraph::DocGraph,
    ) -> Result<()> {
        if let Some(v) = &self.site {
            if v.len() != graph.n_sites() {
                return Err(EngineError::InvalidConfig {
                    reason: format!(
                        "site-layer personalization has length {}, graph has {} sites",
                        v.len(),
                        graph.n_sites()
                    ),
                });
            }
        }
        for (&site, v) in &self.local {
            if site >= graph.n_sites() {
                return Err(EngineError::InvalidConfig {
                    reason: format!(
                        "document-layer personalization names site {site}, \
                         graph has {} sites",
                        graph.n_sites()
                    ),
                });
            }
            let size = graph.site_size(lmm_graph::SiteId(site));
            if v.len() != size {
                return Err(EngineError::InvalidConfig {
                    reason: format!(
                        "document-layer personalization for site {site} has length {}, \
                         site has {size} documents",
                        v.len()
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Everything a [`Ranker`](crate::Ranker) needs beyond the graph itself.
///
/// One context is shared across backends so that switching strategies never
/// silently changes convergence tolerances, personalization, site-graph
/// derivation, or monitoring.
#[derive(Clone)]
pub struct ExecContext {
    /// Convergence policy of every stationary computation.
    pub convergence: ConvergencePolicy,
    /// Personalization at both layers.
    pub personalization: Personalization,
    /// SiteGraph derivation options (shared between local and distributed
    /// pipelines — see [`lmm_graph::sitegraph::ranking_site_graph`]).
    pub site_options: SiteGraphOptions,
    /// Worker threads for parallel per-site phases (`0` = one per core).
    pub threads: usize,
    /// Optional message-loss injection for distributed backends.
    pub fault: Option<FaultConfig>,
    /// Telemetry sink notified after every run.
    pub telemetry: Arc<dyn TelemetrySink>,
}

impl std::fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("convergence", &self.convergence)
            .field("personalization", &self.personalization)
            .field("site_options", &self.site_options)
            .field("threads", &self.threads)
            .field("fault", &self.fault)
            .field("telemetry", &"<dyn TelemetrySink>")
            .finish()
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        Self {
            convergence: ConvergencePolicy::default(),
            personalization: Personalization::default(),
            site_options: SiteGraphOptions::default(),
            threads: 0,
            fault: None,
            telemetry: Arc::new(NullSink),
        }
    }
}

impl ExecContext {
    /// Validates the context (convergence policy and personalization).
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidConfig`] for out-of-range fields.
    pub fn validate(&self) -> Result<()> {
        self.convergence.validate()?;
        self.personalization.validate()?;
        if let Some(fault) = &self.fault {
            fault.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_is_valid() {
        ExecContext::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_tolerance() {
        let mut ctx = ExecContext::default();
        ctx.convergence.tol = 0.0;
        assert!(ctx.validate().is_err());
        ctx.convergence.tol = f64::NAN;
        assert!(ctx.validate().is_err());
    }

    #[test]
    fn rejects_bad_personalization() {
        let mut ctx = ExecContext::default();
        ctx.personalization.site = Some(vec![0.0, -1.0]);
        assert!(ctx.validate().is_err());
        ctx.personalization.site = Some(vec![0.0, 0.0]);
        assert!(ctx.validate().is_err());
        ctx.personalization.site = Some(vec![0.5, 0.5]);
        ctx.validate().unwrap();
    }

    #[test]
    fn rejects_bad_fault() {
        let ctx = ExecContext {
            fault: Some(FaultConfig {
                drop_prob: 1.0,
                seed: 0,
            }),
            ..ExecContext::default()
        };
        assert!(ctx.validate().is_err());
    }
}
