//! Bridge from the Web substrate to the abstract model: builds the
//! layer-decomposable [`LayeredMarkovModel`] induced by a [`DocGraph`]
//! (Section 3.1's instantiation — sites are phases, documents sub-states).
//!
//! This is what lets the centralized Approaches 1/2 run on real web graphs
//! through the same engine as the layered pipelines, and what makes the
//! engine-level Partition Theorem test meaningful: Approach 2 on the
//! induced model must equal the Layered Method's composed DocRank.

use crate::context::ExecContext;
use crate::error::Result;
use lmm_core::model::{LayeredMarkovModel, PhaseModel};
use lmm_graph::docgraph::DocGraph;
use lmm_graph::ids::SiteId;
use lmm_graph::sitegraph::ranking_site_graph;
use lmm_linalg::StochasticMatrix;

/// Builds the graph-induced two-layer model: `Y` is the row-normalized
/// SiteGraph (derived through the shared
/// [`ranking_site_graph`] helper), and `U_I` is site `I`'s row-normalized
/// intra-site subgraph. Per-site document personalization from the context
/// becomes the phase's initial (gatekeeper-row) distribution.
///
/// # Errors
/// Propagates model-construction failures (empty sites, malformed
/// personalization vectors).
pub fn model_from_graph(graph: &DocGraph, ctx: &ExecContext) -> Result<LayeredMarkovModel> {
    let site_graph = ranking_site_graph(graph, &ctx.site_options);
    let y = site_graph.to_stochastic()?;

    let mut phases = Vec::with_capacity(graph.n_sites());
    for s in 0..graph.n_sites() {
        let sub = graph.site_subgraph(SiteId(s));
        let u = StochasticMatrix::from_adjacency(sub.adjacency)?;
        let vu = ctx.personalization.local.get(&s).map(|v| normalized(v));
        phases.push(PhaseModel::new(u, vu)?);
    }
    Ok(LayeredMarkovModel::new(y, None, phases)?)
}

/// Re-orders a model-state score vector (phase-major: site, then local
/// index) into global `DocId` order.
#[must_use]
pub fn state_scores_to_doc_order(graph: &DocGraph, state_scores: &[f64]) -> Vec<f64> {
    let mut doc_scores = vec![0.0f64; graph.n_docs()];
    let mut offset = 0usize;
    for s in 0..graph.n_sites() {
        let members = graph.docs_of_site(SiteId(s));
        for (local, doc) in members.iter().enumerate() {
            doc_scores[doc.index()] = state_scores[offset + local];
        }
        offset += members.len();
    }
    doc_scores
}

/// Sums a model-state score vector into per-site masses (the site layer a
/// centralized approach implies).
#[must_use]
pub fn per_site_mass(graph: &DocGraph, state_scores: &[f64]) -> Vec<f64> {
    let mut site_mass = vec![0.0f64; graph.n_sites()];
    let mut offset = 0usize;
    for (s, mass) in site_mass.iter_mut().enumerate() {
        let n = graph.site_size(SiteId(s));
        *mass = state_scores[offset..offset + n].iter().sum();
        offset += n;
    }
    site_mass
}

fn normalized(v: &[f64]) -> Vec<f64> {
    let total: f64 = v.iter().sum();
    v.iter().map(|&x| x / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_graph::docgraph::DocGraphBuilder;

    fn two_site_graph() -> DocGraph {
        let mut b = DocGraphBuilder::new();
        let a0 = b.add_doc("a.org", "http://a.org/");
        let a1 = b.add_doc("a.org", "http://a.org/1");
        let c0 = b.add_doc("c.org", "http://c.org/");
        b.add_link(a0, a1).unwrap();
        b.add_link(a1, a0).unwrap();
        b.add_link(a0, c0).unwrap();
        b.add_link(c0, a0).unwrap();
        b.build()
    }

    #[test]
    fn induced_model_shape_matches_graph() {
        let g = two_site_graph();
        let model = model_from_graph(&g, &ExecContext::default()).unwrap();
        assert_eq!(model.n_phases(), g.n_sites());
        assert_eq!(model.total_states(), g.n_docs());
    }

    #[test]
    fn state_order_roundtrip() {
        let g = two_site_graph();
        // State order is (site 0: a.org locals), then (site 1: c.org).
        let state_scores = vec![0.1, 0.2, 0.7];
        let doc_scores = state_scores_to_doc_order(&g, &state_scores);
        assert_eq!(doc_scores.len(), 3);
        let total: f64 = doc_scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        let masses = per_site_mass(&g, &state_scores);
        assert!((masses[0] - 0.3).abs() < 1e-12);
        assert!((masses[1] - 0.7).abs() < 1e-12);
    }
}
