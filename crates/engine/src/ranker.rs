//! The pluggable ranking-strategy trait.

use std::sync::Arc;

use crate::context::ExecContext;
use crate::error::{EngineError, Result};
use crate::outcome::RankOutcome;
use lmm_core::incremental::UpdateStats;
use lmm_graph::delta::{AppliedDelta, GraphDelta};
use lmm_graph::docgraph::DocGraph;

/// Result of a structural-delta update: the mutated graph (so the engine
/// can refresh its serving cache and fingerprint in place), the induced
/// summary (exact edge diff + site staleness sets — the engine composes
/// its fingerprint and the serving tier's shard invalidation set from it),
/// the new outcome, and the incremental cost accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaOutcome {
    /// The graph after the delta was applied — shared with the backend's
    /// retained state, so returning it never deep-copies the graph.
    pub graph: Arc<DocGraph>,
    /// The exact induced summary of the applied delta.
    pub applied: AppliedDelta,
    /// The refreshed ranking outcome.
    pub outcome: RankOutcome,
    /// Which layers were recomputed vs reused.
    pub stats: UpdateStats,
}

/// A ranking strategy: anything that can turn a document graph into a
/// global document ranking under a shared [`ExecContext`].
///
/// The paper's point (and the Partition Theorem's) is that its four
/// approaches and several deployment architectures compute interchangeable
/// rankings over the same graph. This trait is that interchangeability made
/// explicit: every approach, deployment, and future backend (sharded,
/// async, remote) is one `Ranker` implementation, and
/// [`RankEngine`](crate::RankEngine) composes them with caching and
/// serving.
///
/// Implementations must be `Send + Sync` so an engine can be shared across
/// serving threads.
pub trait Ranker: Send + Sync {
    /// Stable human-readable backend name (used in telemetry and outcome
    /// labels).
    fn name(&self) -> String;

    /// Ranks the graph under the context.
    ///
    /// The returned outcome's `ranking` must be a probability distribution
    /// over all documents in `DocId` order, and `telemetry.backend` must
    /// equal [`Ranker::name`].
    ///
    /// # Errors
    /// Backend-specific failures (non-convergence, unsupported context
    /// features, invalid graphs), uniformly wrapped in
    /// [`EngineError`](crate::EngineError).
    fn rank(&self, graph: &DocGraph, ctx: &ExecContext) -> Result<RankOutcome>;

    /// Applies a structural [`GraphDelta`] to the backend's maintained
    /// state, recomputing only the stale layers.
    ///
    /// Only backends that keep incremental state (the built-in
    /// [`IncrementalRanker`](crate::IncrementalRanker)) override this; the
    /// default refuses, so stateless backends never pretend a delta was
    /// cheap.
    ///
    /// # Errors
    /// [`EngineError::UnsupportedDelta`] by default;
    /// [`EngineError::NotRanked`] when no previous state exists; otherwise
    /// backend-specific failures.
    fn apply_delta(&self, _delta: &GraphDelta, _ctx: &ExecContext) -> Result<DeltaOutcome> {
        Err(EngineError::UnsupportedDelta {
            backend: self.name(),
        })
    }
}
