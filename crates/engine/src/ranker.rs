//! The pluggable ranking-strategy trait.

use crate::context::ExecContext;
use crate::error::Result;
use crate::outcome::RankOutcome;
use lmm_graph::docgraph::DocGraph;

/// A ranking strategy: anything that can turn a document graph into a
/// global document ranking under a shared [`ExecContext`].
///
/// The paper's point (and the Partition Theorem's) is that its four
/// approaches and several deployment architectures compute interchangeable
/// rankings over the same graph. This trait is that interchangeability made
/// explicit: every approach, deployment, and future backend (sharded,
/// async, remote) is one `Ranker` implementation, and
/// [`RankEngine`](crate::RankEngine) composes them with caching and
/// serving.
///
/// Implementations must be `Send + Sync` so an engine can be shared across
/// serving threads.
pub trait Ranker: Send + Sync {
    /// Stable human-readable backend name (used in telemetry and outcome
    /// labels).
    fn name(&self) -> String;

    /// Ranks the graph under the context.
    ///
    /// The returned outcome's `ranking` must be a probability distribution
    /// over all documents in `DocId` order, and `telemetry.backend` must
    /// equal [`Ranker::name`].
    ///
    /// # Errors
    /// Backend-specific failures (non-convergence, unsupported context
    /// features, invalid graphs), uniformly wrapped in
    /// [`EngineError`](crate::EngineError).
    fn rank(&self, graph: &DocGraph, ctx: &ExecContext) -> Result<RankOutcome>;
}
