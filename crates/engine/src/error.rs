//! Error type of the unified engine: one enum over every backend's failure
//! modes plus the engine's own configuration and serving errors.

use std::error::Error as StdError;
use std::fmt;

use lmm_core::LmmError;
use lmm_graph::GraphError;
use lmm_linalg::LinalgError;
use lmm_p2p::P2pError;
use lmm_rank::RankError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors produced by engine configuration, ranking, and serving.
#[derive(Debug)]
pub enum EngineError {
    /// The builder was given an inconsistent or out-of-range configuration.
    InvalidConfig {
        /// Human-readable cause.
        reason: String,
    },
    /// A serving method was called before any [`rank`](crate::RankEngine::rank)
    /// call populated the cache.
    NotRanked,
    /// [`apply_delta`](crate::RankEngine::apply_delta) was called on a
    /// backend that does not maintain incremental state.
    UnsupportedDelta {
        /// Name of the backend that cannot apply deltas.
        backend: String,
    },
    /// A query referenced a document or site outside the ranked graph.
    OutOfRange {
        /// What was referenced.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// Number of valid entries.
        len: usize,
    },
    /// A point lookup named a document or site that **was** ranked but has
    /// been removed — its id slot is tombstoned. Distinct from
    /// [`OutOfRange`](EngineError::OutOfRange) so callers can tell "gone"
    /// from "never existed" (the serve tier mirrors this split with
    /// `TombstonedDoc`/`TombstonedSite`).
    Tombstoned {
        /// What was referenced (`"document"` or `"site"`).
        what: &'static str,
        /// The removed id.
        index: usize,
    },
    /// Underlying LMM failure (model construction, approaches 1-4).
    Core(LmmError),
    /// Underlying distributed-run failure.
    P2p(P2pError),
    /// Underlying ranking failure (PageRank / gatekeeper / metrics).
    Rank(RankError),
    /// Underlying graph failure.
    Graph(GraphError),
    /// Underlying linear-algebra failure.
    Linalg(LinalgError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig { reason } => {
                write!(f, "invalid engine configuration: {reason}")
            }
            EngineError::NotRanked => {
                write!(f, "no ranking cached: call RankEngine::rank first")
            }
            EngineError::UnsupportedDelta { backend } => {
                write!(
                    f,
                    "the {backend} backend cannot apply graph deltas; \
                     use BackendSpec::Incremental"
                )
            }
            EngineError::OutOfRange { what, index, len } => {
                write!(f, "{what} {index} out of range (graph has {len})")
            }
            EngineError::Tombstoned { what, index } => {
                write!(f, "{what} {index} was removed (tombstoned)")
            }
            EngineError::Core(e) => write!(f, "layered model error: {e}"),
            EngineError::P2p(e) => write!(f, "distributed run error: {e}"),
            EngineError::Rank(e) => write!(f, "ranking error: {e}"),
            EngineError::Graph(e) => write!(f, "graph error: {e}"),
            EngineError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl StdError for EngineError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            EngineError::P2p(e) => Some(e),
            EngineError::Rank(e) => Some(e),
            EngineError::Graph(e) => Some(e),
            EngineError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LmmError> for EngineError {
    fn from(e: LmmError) -> Self {
        EngineError::Core(e)
    }
}

impl From<P2pError> for EngineError {
    fn from(e: P2pError) -> Self {
        EngineError::P2p(e)
    }
}

impl From<RankError> for EngineError {
    fn from(e: RankError) -> Self {
        EngineError::Rank(e)
    }
}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

impl From<LinalgError> for EngineError {
    fn from(e: LinalgError) -> Self {
        EngineError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EngineError::InvalidConfig {
            reason: "damping 1.5 out of (0, 1)".into(),
        };
        assert!(e.to_string().contains("1.5"));
        assert!(EngineError::NotRanked.to_string().contains("rank"));
    }

    #[test]
    fn sources_preserved() {
        let e = EngineError::from(LinalgError::Empty);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: StdError + Send + Sync + 'static>() {}
        assert_bounds::<EngineError>();
    }
}
