//! The unified engine: one validated configuration, one builder, pluggable
//! backends, and a query-serving layer over the cached ranking.

use std::sync::Arc;

use crate::backends::{
    CentralizedStationary, DistributedRanker, FlatPageRank, IncrementalRanker, LayeredRanker,
};
use crate::context::{ConvergencePolicy, ExecContext, Personalization};
use crate::error::{EngineError, Result};
use crate::fingerprint::GraphFingerprint;
use crate::outcome::{RankComparison, RankOutcome};
use crate::ranker::Ranker;
use crate::snapshot::{RankSnapshot, Staleness};
use crate::telemetry::TelemetrySink;
use lmm_core::approaches::RankApproach;
use lmm_core::siterank::SiteLayerMethod;
use lmm_graph::docgraph::DocGraph;
use lmm_graph::sitegraph::SiteGraphOptions;
use lmm_graph::{DocId, SiteId};
use lmm_p2p::network::FaultConfig;
use lmm_p2p::runner::Architecture;

/// Which built-in backend an engine runs.
///
/// Custom strategies plug in through
/// [`RankEngineBuilder::custom_backend`]; this enum only names the
/// built-ins so configurations stay plain data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendSpec {
    /// Flat PageRank over the whole document graph (Approach 1's Web
    /// instantiation; the paper's Figure 3 baseline).
    FlatPageRank,
    /// Stationary distribution of the induced global chain through the
    /// factored operator (Approach 2).
    CentralizedStationary,
    /// The layered SiteRank × DocRank pipeline (Approaches 3/4).
    Layered {
        /// How the site layer is ranked: `PageRank` (Approach 3) or
        /// `Stationary` (Approach 4, the Layered Method).
        site_layer: SiteLayerMethod,
    },
    /// A distributed deployment of the layered pipeline.
    Distributed {
        /// Deployment topology.
        architecture: Architecture,
    },
    /// Incremental maintenance of the layered pipeline across `rank` calls.
    Incremental,
}

impl BackendSpec {
    /// Maps one of the paper's four approaches to its engine backend.
    #[must_use]
    pub fn approach(approach: RankApproach) -> Self {
        match approach {
            RankApproach::PageRankOnGlobal => BackendSpec::FlatPageRank,
            RankApproach::StationaryOfGlobal => BackendSpec::CentralizedStationary,
            RankApproach::LayeredWithPageRankSite => BackendSpec::Layered {
                site_layer: SiteLayerMethod::PageRank,
            },
            RankApproach::Layered => BackendSpec::Layered {
                site_layer: SiteLayerMethod::Stationary,
            },
        }
    }
}

/// The validated engine configuration the builder produces: every scattered
/// knob of the underlying crates (`LmmParams`, `LayeredRankConfig`,
/// `DistributedConfig`, `PowerOptions`, `SiteGraphOptions`) unified in one
/// place.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// The selected backend.
    pub backend: BackendSpec,
    /// Damping of per-site (document-layer) computations, and the
    /// gatekeeper mixing parameter `α` of the centralized approaches.
    pub local_damping: f64,
    /// Damping of site-layer computations.
    pub site_damping: f64,
    /// Convergence policy of every stationary computation.
    pub convergence: ConvergencePolicy,
    /// SiteGraph derivation options.
    pub site_options: SiteGraphOptions,
    /// Personalization at both layers.
    pub personalization: Personalization,
    /// Worker threads for parallel per-site phases (`0` = one per core).
    pub threads: usize,
    /// Optional message-loss injection for distributed backends.
    pub fault: Option<FaultConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            backend: BackendSpec::Layered {
                site_layer: SiteLayerMethod::PageRank,
            },
            local_damping: 0.85,
            site_damping: 0.85,
            convergence: ConvergencePolicy::default(),
            site_options: SiteGraphOptions::default(),
            personalization: Personalization::default(),
            threads: 0,
            fault: None,
        }
    }
}

impl EngineConfig {
    /// Validates every field.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidConfig`] for out-of-range fields.
    pub fn validate(&self) -> Result<()> {
        for (label, f) in [
            ("local damping", self.local_damping),
            ("site damping", self.site_damping),
        ] {
            if !f.is_finite() || f <= 0.0 || f >= 1.0 {
                return Err(EngineError::InvalidConfig {
                    reason: format!("{label} {f} must lie strictly in (0, 1)"),
                });
            }
        }
        self.context().validate()
    }

    /// The execution context this configuration induces (with a no-op
    /// telemetry sink; the builder installs the configured sink).
    #[must_use]
    pub fn context(&self) -> ExecContext {
        ExecContext {
            convergence: self.convergence,
            personalization: self.personalization.clone(),
            site_options: self.site_options,
            threads: self.threads,
            fault: self.fault,
            ..ExecContext::default()
        }
    }

    fn make_ranker(&self) -> Box<dyn Ranker> {
        match self.backend {
            BackendSpec::FlatPageRank => Box::new(FlatPageRank {
                damping: self.local_damping,
            }),
            BackendSpec::CentralizedStationary => Box::new(CentralizedStationary {
                alpha: self.local_damping,
            }),
            BackendSpec::Layered { site_layer } => Box::new(LayeredRanker {
                local_damping: self.local_damping,
                site_damping: self.site_damping,
                site_layer,
            }),
            BackendSpec::Distributed { architecture } => Box::new(DistributedRanker {
                architecture,
                site_damping: self.site_damping,
                local_damping: self.local_damping,
            }),
            BackendSpec::Incremental => Box::new(IncrementalRanker::new(
                self.local_damping,
                self.site_damping,
            )),
        }
    }
}

/// Fluent builder for [`RankEngine`] — the single entry point that
/// replaces the ad-hoc constructors (`PageRank::new().run()`,
/// `layered_doc_rank(..)`, `run_distributed(..)`, ...).
///
/// # Example
/// ```
/// use lmm_engine::{BackendSpec, RankEngine};
///
/// # fn main() -> Result<(), lmm_engine::EngineError> {
/// let engine = RankEngine::builder()
///     .backend(BackendSpec::FlatPageRank)
///     .damping(0.9)
///     .tolerance(1e-8)
///     .build()?;
/// assert_eq!(engine.backend_name(), "flat-pagerank");
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct RankEngineBuilder {
    config: EngineConfig,
    telemetry: Option<Arc<dyn TelemetrySink>>,
    custom: Option<Box<dyn Ranker>>,
}

impl std::fmt::Debug for RankEngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankEngineBuilder")
            .field("config", &self.config)
            .field("telemetry", &self.telemetry.is_some())
            .field("custom", &self.custom.as_ref().map(|r| r.name()))
            .finish()
    }
}

impl RankEngineBuilder {
    /// Selects a built-in backend.
    #[must_use]
    pub fn backend(mut self, backend: BackendSpec) -> Self {
        self.config.backend = backend;
        self
    }

    /// Selects the backend matching one of the paper's four approaches.
    #[must_use]
    pub fn approach(mut self, approach: RankApproach) -> Self {
        self.config.backend = BackendSpec::approach(approach);
        self
    }

    /// Installs a custom [`Ranker`] strategy instead of a built-in backend.
    #[must_use]
    pub fn custom_backend(mut self, ranker: Box<dyn Ranker>) -> Self {
        self.custom = Some(ranker);
        self
    }

    /// Sets both damping factors (and the gatekeeper `α`) at once — the
    /// common case; the paper uses 0.85 everywhere.
    #[must_use]
    pub fn damping(mut self, f: f64) -> Self {
        self.config.local_damping = f;
        self.config.site_damping = f;
        self
    }

    /// Sets only the document-layer damping / gatekeeper `α`.
    #[must_use]
    pub fn local_damping(mut self, f: f64) -> Self {
        self.config.local_damping = f;
        self
    }

    /// Sets only the site-layer damping.
    #[must_use]
    pub fn site_damping(mut self, f: f64) -> Self {
        self.config.site_damping = f;
        self
    }

    /// Sets the convergence tolerance.
    #[must_use]
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.config.convergence.tol = tol;
        self
    }

    /// Sets the iteration/round budget.
    #[must_use]
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.config.convergence.max_iters = max_iters;
        self
    }

    /// Sets SiteGraph derivation options.
    #[must_use]
    pub fn site_options(mut self, options: SiteGraphOptions) -> Self {
        self.config.site_options = options;
        self
    }

    /// Sets the site-layer personalization (teleport) vector.
    #[must_use]
    pub fn site_personalization(mut self, v: Vec<f64>) -> Self {
        self.config.personalization.site = Some(v);
        self
    }

    /// Sets one site's document-layer personalization vector (over the
    /// site's local document indices).
    #[must_use]
    pub fn local_personalization(mut self, site: SiteId, v: Vec<f64>) -> Self {
        self.config.personalization.local.insert(site.index(), v);
        self
    }

    /// Sets the worker-thread count for parallel per-site phases.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Injects message loss into distributed backends.
    #[must_use]
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.config.fault = Some(fault);
        self
    }

    /// Installs a telemetry sink notified after every run.
    #[must_use]
    pub fn telemetry(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Validates the configuration and builds the engine.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidConfig`] for out-of-range damping,
    /// tolerance, budgets, personalization, or fault probability.
    pub fn build(self) -> Result<RankEngine> {
        self.config.validate()?;
        let ranker = match self.custom {
            Some(ranker) => ranker,
            None => self.config.make_ranker(),
        };
        let mut ctx = self.config.context();
        if let Some(sink) = self.telemetry {
            ctx.telemetry = sink;
        }
        Ok(RankEngine {
            config: self.config,
            ctx,
            ranker,
            cache: None,
            epoch: 0,
        })
    }
}

struct ServingCache {
    outcome: RankOutcome,
    fingerprint: GraphFingerprint,
    snapshot: RankSnapshot,
}

/// The unified ranking engine: one configured backend plus a query-serving
/// layer over the cached ranking.
///
/// [`rank`](RankEngine::rank) computes (or re-serves) the ranking;
/// [`top_k`](RankEngine::top_k), [`top_k_for_site`](RankEngine::top_k_for_site),
/// [`score`](RankEngine::score), and [`compare`](RankEngine::compare) then
/// answer queries without recomputation — the first step toward the
/// serving tier.
pub struct RankEngine {
    config: EngineConfig,
    ctx: ExecContext,
    ranker: Box<dyn Ranker>,
    cache: Option<ServingCache>,
    /// Monotone snapshot epoch: advanced by every *fresh* computation
    /// (never reset by [`invalidate`](Self::invalidate)), so a serving
    /// tier can order snapshots across cache drops.
    epoch: u64,
}

/// Materializes a graph's membership/assignment tables for a snapshot.
fn snapshot_tables(graph: &DocGraph) -> (Arc<Vec<Vec<DocId>>>, Arc<Vec<SiteId>>) {
    (
        Arc::new(
            (0..graph.n_sites())
                .map(|s| graph.docs_of_site(SiteId(s)).to_vec())
                .collect(),
        ),
        Arc::new(graph.site_assignments().to_vec()),
    )
}

/// Builds the immutable serving snapshot of one fresh computation over
/// pre-shared membership tables.
fn build_snapshot(
    epoch: u64,
    outcome: &RankOutcome,
    tables: (Arc<Vec<Vec<DocId>>>, Arc<Vec<SiteId>>),
    staleness: Staleness,
) -> RankSnapshot {
    RankSnapshot::new(
        epoch,
        outcome.backend.clone(),
        Arc::new(outcome.ranking.scores().to_vec()),
        outcome
            .site_rank
            .as_ref()
            .map(|r| Arc::new(r.scores().to_vec())),
        tables.0,
        tables.1,
        staleness,
    )
}

impl std::fmt::Debug for RankEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankEngine")
            .field("config", &self.config)
            .field("backend", &self.ranker.name())
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

impl RankEngine {
    /// Starts building an engine.
    #[must_use]
    pub fn builder() -> RankEngineBuilder {
        RankEngineBuilder::default()
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The active backend's name.
    #[must_use]
    pub fn backend_name(&self) -> String {
        self.ranker.name()
    }

    /// The shared execution context handed to the backend.
    #[must_use]
    pub fn context(&self) -> &ExecContext {
        &self.ctx
    }

    /// Ranks the graph, caching the outcome for the serving methods.
    ///
    /// A repeated call with an unchanged graph serves the cached outcome
    /// without recomputation; a changed graph (or [`invalidate`](Self::invalidate))
    /// triggers a fresh run. Every fresh run is reported to the telemetry
    /// sink.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidConfig`] when the configured
    /// personalization does not fit this graph's shape (wrong site-vector
    /// length, unknown site key, wrong per-site vector length); otherwise
    /// propagates backend failures.
    pub fn rank(&mut self, graph: &DocGraph) -> Result<&RankOutcome> {
        self.ctx.personalization.validate_against_graph(graph)?;
        let fingerprint = GraphFingerprint::of(graph);
        let fresh = match &self.cache {
            Some(cache) => cache.fingerprint != fingerprint,
            None => true,
        };
        if fresh {
            let mut outcome = self.ranker.rank(graph, &self.ctx)?;
            self.epoch += 1;
            outcome.telemetry.epoch = self.epoch;
            self.ctx.telemetry.record(&outcome.telemetry);
            // A from-scratch run gives no per-site staleness accounting, so
            // the snapshot conservatively declares everything moved.
            let snapshot = build_snapshot(
                self.epoch,
                &outcome,
                snapshot_tables(graph),
                Staleness::Full,
            );
            self.cache = Some(ServingCache {
                outcome,
                fingerprint,
                snapshot,
            });
        }
        Ok(&self.cache.as_ref().expect("cache populated above").outcome)
    }

    /// Applies a structural [`GraphDelta`](lmm_graph::delta::GraphDelta)
    /// to the maintained graph, re-ranking **incrementally**: only the
    /// changed, grown, and added sites are recomputed (warm-started where
    /// the dimensions allow), the serving cache and graph fingerprint are
    /// updated *in place* — no full invalidation — and the run's
    /// [`UpdateStats`](lmm_core::incremental::UpdateStats)-derived
    /// telemetry is reported to the sink like any fresh run.
    ///
    /// After this returns, the serving methods answer over the mutated
    /// graph, and a subsequent [`rank`](Self::rank) call with the mutated
    /// graph is a cache hit.
    ///
    /// # Errors
    /// [`EngineError::NotRanked`] before the first `rank` call;
    /// [`EngineError::UnsupportedDelta`] unless the backend maintains
    /// incremental state ([`BackendSpec::Incremental`]); otherwise delta
    /// validation and backend failures.
    pub fn apply_delta(&mut self, delta: &lmm_graph::delta::GraphDelta) -> Result<&RankOutcome> {
        if self.cache.is_none() {
            return Err(EngineError::NotRanked);
        }
        let mut updated = self.ranker.apply_delta(delta, &self.ctx)?;
        self.epoch += 1;
        updated.outcome.telemetry.epoch = self.epoch;
        self.ctx.telemetry.record(&updated.outcome.telemetry);
        let cache = self.cache.as_mut().expect("checked above");
        // O(delta) fingerprint refresh: fold the exact induced edge diff
        // into the cached fingerprint instead of re-hashing the graph.
        cache.fingerprint = cache.fingerprint.compose(&updated.applied);
        debug_assert_eq!(
            cache.fingerprint,
            GraphFingerprint::of(&updated.graph),
            "composed fingerprint diverged from a from-scratch hash"
        );
        // Shard invalidation set. Three regimes:
        //  * no SiteRank rerun — only the named sites' documents moved
        //    (bit-identical elsewhere): `Sites`, shrunk sites included;
        //  * SiteRank reran because of a removal — the survivors' per-site
        //    orders are intact but every score was rescaled by the
        //    redistribution: `Resized` names what must rebuild (membership
        //    or local-order changes, appended slots included) and what was
        //    tombstoned, so a serving tier refreshes the rest instead of
        //    rebuilding the world;
        //  * SiteRank reran on a growth-only delta — `Full`, as before.
        let removal =
            !updated.applied.removed_docs.is_empty() || !updated.applied.removed_sites.is_empty();
        let mut sites = updated.applied.changed_sites.clone();
        sites.extend_from_slice(&updated.applied.grown_sites);
        sites.extend_from_slice(&updated.applied.shrunk_sites);
        let staleness = if updated.stats.site_rank_recomputed {
            if removal {
                let old_sites = updated.graph.n_sites() - updated.applied.added_sites;
                // Only live appended slots: a slot appended dead (a
                // cancelled same-delta addition) has no content to rebuild.
                sites.extend(
                    (old_sites..updated.graph.n_sites())
                        .filter(|&s| updated.graph.is_live_site(SiteId(s))),
                );
                sites.sort_unstable();
                Staleness::Resized {
                    sites,
                    removed_sites: updated.applied.removed_sites.clone(),
                }
            } else {
                Staleness::Full
            }
        } else {
            sites.sort_unstable();
            Staleness::Sites(sites)
        };
        // Membership-preserving deltas (the common rewire) re-pin the
        // previous snapshot's membership/assignment tables instead of
        // re-materializing O(docs) copies — only the score vector is new.
        let tables = if updated.applied.new_doc_sites.is_empty()
            && updated.applied.added_sites == 0
            && !removal
        {
            (
                cache.snapshot.site_members_arc(),
                cache.snapshot.site_of_arc(),
            )
        } else {
            snapshot_tables(&updated.graph)
        };
        cache.snapshot = build_snapshot(self.epoch, &updated.outcome, tables, staleness);
        cache.outcome = updated.outcome;
        Ok(&cache.outcome)
    }

    /// Drops the cached ranking, forcing the next [`rank`](Self::rank) to
    /// recompute. The epoch counter is **not** reset: the recompute will
    /// publish the next epoch, so serving tiers keep a total order.
    pub fn invalidate(&mut self) {
        self.cache = None;
    }

    /// The current snapshot epoch (`0` before the first fresh computation;
    /// each fresh `rank` or `apply_delta` advances it by one).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The immutable serving snapshot of the cached ranking — the hand-off
    /// unit for the sharded serving tier. Cheap: the returned value shares
    /// the cached score and membership storage behind `Arc`s.
    ///
    /// # Errors
    /// Returns [`EngineError::NotRanked`] before the first `rank` call.
    pub fn snapshot(&self) -> Result<RankSnapshot> {
        self.cache
            .as_ref()
            .map(|c| c.snapshot.clone())
            .ok_or(EngineError::NotRanked)
    }

    /// The cached outcome.
    ///
    /// # Errors
    /// Returns [`EngineError::NotRanked`] before the first `rank` call.
    pub fn outcome(&self) -> Result<&RankOutcome> {
        self.cache
            .as_ref()
            .map(|c| &c.outcome)
            .ok_or(EngineError::NotRanked)
    }

    /// The `k` top-ranked documents with scores, best first, from the
    /// cache. Tombstoned documents never appear (their dead slots hold
    /// zero score but are not ranked results), so this stays bitwise
    /// comparable with the serving tier's `top_k` at any `k`.
    ///
    /// # Errors
    /// Returns [`EngineError::NotRanked`] before the first `rank` call.
    pub fn top_k(&self, k: usize) -> Result<Vec<(DocId, f64)>> {
        let cache = self.cache.as_ref().ok_or(EngineError::NotRanked)?;
        let dead = cache.snapshot.n_docs() - cache.snapshot.n_live_docs();
        if dead == 0 {
            return Ok(cache.outcome.top_k(k));
        }
        // Dead slots score 0.0, so the top (k + dead) contains at least k
        // live entries; filter them out rather than serve the dead.
        let mut top = cache.outcome.top_k(k.saturating_add(dead));
        top.retain(|&(d, _)| cache.snapshot.is_live_doc(d));
        top.truncate(k);
        Ok(top)
    }

    /// The `k` top-ranked documents *within one site*, best first, from
    /// the cache.
    ///
    /// # Errors
    /// [`EngineError::NotRanked`] before the first `rank` call;
    /// [`EngineError::OutOfRange`] for an unknown site;
    /// [`EngineError::Tombstoned`] for a removed site.
    pub fn top_k_for_site(&self, site: SiteId, k: usize) -> Result<Vec<(DocId, f64)>> {
        let cache = self.cache.as_ref().ok_or(EngineError::NotRanked)?;
        if site.index() >= cache.snapshot.n_sites() {
            return Err(EngineError::OutOfRange {
                what: "site",
                index: site.index(),
                len: cache.snapshot.n_sites(),
            });
        }
        if cache.snapshot.is_tombstoned_site(site) {
            return Err(EngineError::Tombstoned {
                what: "site",
                index: site.index(),
            });
        }
        let members = cache.snapshot.members_of_site(site);
        let scores = cache.outcome.ranking.scores();
        let mut ranked: Vec<(DocId, f64)> =
            members.iter().map(|&d| (d, scores[d.index()])).collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        Ok(ranked)
    }

    /// Global score of one document, from the cache.
    ///
    /// # Errors
    /// [`EngineError::NotRanked`] before the first `rank` call;
    /// [`EngineError::OutOfRange`] for an unknown document;
    /// [`EngineError::Tombstoned`] for a removed document (a dead slot's
    /// zero is not a score).
    pub fn score(&self, doc: DocId) -> Result<f64> {
        let cache = self.cache.as_ref().ok_or(EngineError::NotRanked)?;
        if doc.index() < cache.snapshot.n_docs() && !cache.snapshot.is_live_doc(doc) {
            return Err(EngineError::Tombstoned {
                what: "document",
                index: doc.index(),
            });
        }
        cache.outcome.score(doc)
    }

    /// SiteRank score of one site, from the cache (`None` when the backend
    /// has no site layer).
    ///
    /// # Errors
    /// [`EngineError::NotRanked`] before the first `rank` call;
    /// [`EngineError::OutOfRange`] for an unknown site;
    /// [`EngineError::Tombstoned`] for a removed site.
    pub fn site_score(&self, site: SiteId) -> Result<Option<f64>> {
        let cache = self.cache.as_ref().ok_or(EngineError::NotRanked)?;
        if site.index() < cache.snapshot.n_sites() && cache.snapshot.is_tombstoned_site(site) {
            return Err(EngineError::Tombstoned {
                what: "site",
                index: site.index(),
            });
        }
        cache.outcome.site_score(site)
    }

    /// Compares the cached ranking against another outcome (e.g. produced
    /// by an engine with a different backend).
    ///
    /// # Errors
    /// [`EngineError::NotRanked`] before the first `rank` call; see
    /// [`RankOutcome::compare`].
    pub fn compare(&self, other: &RankOutcome, k: usize) -> Result<RankComparison> {
        self.outcome()?.compare(other, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_graph::docgraph::DocGraphBuilder;
    use lmm_graph::DocId;

    /// 2 sites x 2 docs with a configurable edge list.
    fn graph_with_edges(edges: &[(usize, usize)]) -> DocGraph {
        let mut b = DocGraphBuilder::new();
        b.add_doc("a.org", "http://a.org/");
        b.add_doc("a.org", "http://a.org/1");
        b.add_doc("b.org", "http://b.org/");
        b.add_doc("b.org", "http://b.org/1");
        for &(f, t) in edges {
            b.add_link(DocId(f), DocId(t)).unwrap();
        }
        b.build()
    }

    #[test]
    fn engine_recomputes_on_same_shape_rewire() {
        // End-to-end form of the audit: a rewired recrawl must be a cache
        // miss, not a stale serve.
        let g = graph_with_edges(&[(0, 1), (1, 0), (1, 2), (2, 3), (3, 0)]);
        let h = graph_with_edges(&[(0, 1), (1, 0), (3, 2), (2, 1), (3, 0)]);
        let sink = std::sync::Arc::new(crate::telemetry::MemorySink::new());
        let mut engine = RankEngine::builder()
            .backend(BackendSpec::FlatPageRank)
            .telemetry(sink.clone())
            .build()
            .unwrap();
        engine.rank(&g).unwrap();
        engine.rank(&g).unwrap(); // unchanged: served from cache
        assert_eq!(sink.len(), 1);
        engine.rank(&h).unwrap(); // rewired: must recompute
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn epoch_advances_only_on_fresh_computations() {
        let g = graph_with_edges(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut engine = RankEngine::builder()
            .backend(BackendSpec::FlatPageRank)
            .build()
            .unwrap();
        assert_eq!(engine.epoch(), 0);
        assert!(engine.snapshot().is_err());
        engine.rank(&g).unwrap();
        assert_eq!(engine.epoch(), 1);
        engine.rank(&g).unwrap(); // cache hit: same epoch
        assert_eq!(engine.epoch(), 1);
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.staleness(), &Staleness::Full);
        assert_eq!(snap.scores(), engine.outcome().unwrap().ranking.scores());
        // Invalidation keeps the counter monotone across the recompute.
        engine.invalidate();
        engine.rank(&g).unwrap();
        assert_eq!(engine.epoch(), 2);
    }
}
