//! End-to-end tests of live graph mutation through the public engine API:
//! `RankEngine::apply_delta` must re-rank incrementally, keep the serving
//! cache coherent, and report honest `UpdateStats`-derived telemetry.

use std::sync::Arc;

use lmm_core::siterank::SiteLayerMethod;
use lmm_engine::{BackendSpec, EngineError, MemorySink, RankEngine};
use lmm_graph::delta::GraphDelta;
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::{DocGraph, SiteId};

fn campus() -> DocGraph {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 600;
    cfg.n_sites = 12;
    cfg.spam_farms.clear();
    cfg.generate().unwrap()
}

fn incremental_engine(sink: Arc<MemorySink>) -> RankEngine {
    RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .damping(0.85)
        .tolerance(1e-10)
        .telemetry(sink)
        .build()
        .unwrap()
}

/// A mixed delta: one intra-site rewire, one grown site, one new site with
/// cross links.
fn mixed_delta(graph: &DocGraph) -> GraphDelta {
    let mut delta = GraphDelta::for_graph(graph);
    let s3 = graph.docs_of_site(SiteId(3));
    delta.remove_link(s3[0], s3[1]).unwrap();
    delta.add_link(s3[1], s3[0]).unwrap();
    let root = graph.docs_of_site(SiteId(7))[0];
    let p = delta.add_page(SiteId(7), "http://grown.example/p").unwrap();
    delta.add_link(root, p).unwrap();
    delta.add_link(p, root).unwrap();
    let s = delta.add_site("fresh.example");
    let q0 = delta.add_page(s, "http://fresh.example/").unwrap();
    let q1 = delta.add_page(s, "http://fresh.example/1").unwrap();
    delta.add_link(q0, q1).unwrap();
    delta.add_link(q1, q0).unwrap();
    delta.add_link(root, q0).unwrap();
    assert_eq!(delta.n_new_sites(), 1);
    assert_eq!(delta.n_new_pages(), 3);
    delta
}

#[test]
fn apply_delta_matches_scratch_rank_and_updates_serving() {
    let base = campus();
    let sink = Arc::new(MemorySink::new());
    let mut engine = incremental_engine(sink.clone());
    engine.rank(&base).unwrap();

    let delta = mixed_delta(&base);
    let (mutated, applied) = base.apply(&delta).unwrap();
    let outcome = engine.apply_delta(&delta).unwrap();
    assert_eq!(outcome.n_docs(), mutated.n_docs());

    // Scratch reference: the layered pipeline on the mutated graph.
    let mut scratch = RankEngine::builder()
        .backend(BackendSpec::Layered {
            site_layer: SiteLayerMethod::PageRank,
        })
        .damping(0.85)
        .tolerance(1e-10)
        .build()
        .unwrap();
    scratch.rank(&mutated).unwrap();
    let cmp = engine.compare(scratch.outcome().unwrap(), 20).unwrap();
    assert!(cmp.l1 < 1e-8, "incremental drifted from scratch: {cmp}");

    // Telemetry: two fresh runs recorded, the second with partial
    // recomputation matching the induced delta.
    let runs = sink.runs();
    assert_eq!(runs.len(), 2);
    let update = &runs[1];
    let expected = applied.changed_sites.len() + applied.grown_sites.len() + applied.added_sites;
    assert_eq!(update.sites_recomputed, expected);
    assert_eq!(
        update.sites_reused,
        mutated.n_sites() - update.sites_recomputed
    );
    assert_eq!(
        update.sites_grown,
        applied.grown_sites.len() + applied.added_sites
    );
    assert!(update.sites_recomputed < mutated.n_sites());
}

#[test]
fn apply_delta_refreshes_cache_in_place() {
    let base = campus();
    let sink = Arc::new(MemorySink::new());
    let mut engine = incremental_engine(sink.clone());
    engine.rank(&base).unwrap();

    let delta = mixed_delta(&base);
    let (mutated, _) = base.apply(&delta).unwrap();
    engine.apply_delta(&delta).unwrap();

    // Serving methods answer over the mutated graph...
    assert_eq!(engine.outcome().unwrap().n_docs(), mutated.n_docs());
    let new_site = SiteId(mutated.n_sites() - 1);
    assert_eq!(mutated.site_name(new_site), "fresh.example");
    let top = engine.top_k_for_site(new_site, 5).unwrap();
    assert_eq!(top.len(), 2);
    assert!(engine.site_score(new_site).unwrap().unwrap() > 0.0);

    // ...and the fingerprint was updated in place: re-ranking the mutated
    // graph is a cache hit (no third telemetry record), not a recompute.
    let cached = engine.rank(&mutated).unwrap().ranking.clone();
    assert_eq!(sink.len(), 2);
    // An empty delta is also served without recomputation.
    let empty = GraphDelta::for_graph(&mutated);
    let outcome = engine.apply_delta(&empty).unwrap();
    assert_eq!(outcome.ranking, cached);
    assert_eq!(sink.runs()[2].sites_reused, mutated.n_sites());
}

#[test]
fn apply_delta_streams_compose() {
    // A stream of deltas applied one by one ends at the same ranking as a
    // from-scratch run on the final graph.
    let base = campus();
    let sink = Arc::new(MemorySink::new());
    let mut engine = incremental_engine(sink);
    engine.rank(&base).unwrap();

    let mut current = base;
    for step in 0..3 {
        let mut delta = GraphDelta::for_graph(&current);
        let site = SiteId(step * 3 % current.n_sites());
        let root = current.docs_of_site(site)[0];
        let p = delta
            .add_page(site, &format!("http://stream.example/{step}"))
            .unwrap();
        delta.add_link(root, p).unwrap();
        delta.add_link(p, root).unwrap();
        let (next, _) = current.apply(&delta).unwrap();
        engine.apply_delta(&delta).unwrap();
        current = next;
    }

    let mut scratch = RankEngine::builder()
        .backend(BackendSpec::Layered {
            site_layer: SiteLayerMethod::PageRank,
        })
        .damping(0.85)
        .tolerance(1e-10)
        .build()
        .unwrap();
    scratch.rank(&current).unwrap();
    let cmp = engine.compare(scratch.outcome().unwrap(), 20).unwrap();
    assert!(cmp.l1 < 1e-7, "streamed deltas drifted: {cmp}");
}

#[test]
fn apply_delta_handles_removal_and_stays_a_cache_hit() {
    let base = campus();
    let sink = Arc::new(MemorySink::new());
    let mut engine = incremental_engine(sink.clone());
    engine.rank(&base).unwrap();

    // Remove one whole site and one page of another; grow a third.
    let mut delta = GraphDelta::for_graph(&base);
    delta.remove_site(SiteId(2)).unwrap();
    let shrunk_doc = base.docs_of_site(SiteId(6))[1];
    delta.remove_page(shrunk_doc).unwrap();
    let root = base.docs_of_site(SiteId(9))[0];
    let p = delta
        .add_page(SiteId(9), "http://engine-grow.example/")
        .unwrap();
    delta.add_link(root, p).unwrap();
    delta.add_link(p, root).unwrap();
    let (mutated, _) = base.apply(&delta).unwrap();

    let outcome = engine.apply_delta(&delta).unwrap().clone();
    // Mass conserved after redistribution.
    let total: f64 = outcome.ranking.scores().iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "mass leaked: {total}");
    // Dead slots carry no score; the member tables dropped them.
    for &d in base.docs_of_site(SiteId(2)) {
        assert_eq!(outcome.ranking.score(d.index()), 0.0);
    }
    let snap = engine.snapshot().unwrap();
    assert!(!snap.is_live_doc(shrunk_doc));
    assert!(snap.is_tombstoned_site(SiteId(2)));
    assert!(snap.members_of_site(SiteId(2)).is_empty());

    // The engine's own query surface refuses the dead — a dead slot's
    // zero is not a score, and top-k never lists tombstoned ids even when
    // k exceeds the live count.
    assert!(matches!(
        engine.score(shrunk_doc),
        Err(EngineError::Tombstoned {
            what: "document",
            ..
        })
    ));
    assert!(matches!(
        engine.site_score(SiteId(2)),
        Err(EngineError::Tombstoned { what: "site", .. })
    ));
    assert!(matches!(
        engine.top_k_for_site(SiteId(2), 3),
        Err(EngineError::Tombstoned { what: "site", .. })
    ));
    let everything = engine.top_k(mutated.n_docs() + 10).unwrap();
    assert_eq!(everything.len(), mutated.n_live_docs());
    assert!(everything.iter().all(|&(d, _)| snap.is_live_doc(d)));

    // Telemetry reports the removal accounting.
    let update = &sink.runs()[1];
    assert_eq!(update.sites_removed, 1);
    assert_eq!(update.sites_shrunk, 1);
    assert_eq!(
        update.sites_reused,
        mutated.n_live_sites() - update.sites_recomputed
    );

    // Survivors match a from-scratch layered run on the compacted graph.
    let (dense, remap) = mutated.compact_ids();
    let mut scratch = RankEngine::builder()
        .backend(BackendSpec::Layered {
            site_layer: SiteLayerMethod::PageRank,
        })
        .damping(0.85)
        .tolerance(1e-10)
        .build()
        .unwrap();
    scratch.rank(&dense).unwrap();
    let mut l1 = 0.0f64;
    for d in 0..mutated.n_docs() {
        if let Some(new) = remap.doc(lmm_graph::DocId(d)) {
            l1 += (outcome.ranking.score(d) - scratch.score(new).unwrap()).abs();
        }
    }
    assert!(l1 < 1e-6, "drifted from compacted scratch by {l1}");

    // The composed fingerprint keeps the tombstoned graph a cache hit.
    let before = sink.len();
    engine.rank(&mutated).unwrap();
    assert_eq!(sink.len(), before, "re-rank of the tombstoned graph missed");
}

#[test]
fn dense_backends_reject_tombstoned_graphs() {
    let base = campus();
    let mut delta = GraphDelta::for_graph(&base);
    delta.remove_page(base.docs_of_site(SiteId(0))[1]).unwrap();
    let (tombstoned, _) = base.apply(&delta).unwrap();
    for backend in [
        BackendSpec::FlatPageRank,
        BackendSpec::CentralizedStationary,
    ] {
        let mut engine = RankEngine::builder().backend(backend).build().unwrap();
        let err = engine.rank(&tombstoned).unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig { .. }), "{err}");
    }
    // The layered backend handles tombstones natively.
    let mut layered = RankEngine::builder()
        .backend(BackendSpec::Layered {
            site_layer: SiteLayerMethod::PageRank,
        })
        .build()
        .unwrap();
    let outcome = layered.rank(&tombstoned).unwrap();
    let total: f64 = outcome.ranking.scores().iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn apply_delta_requires_a_ranked_incremental_backend() {
    let base = campus();
    let delta = GraphDelta::for_graph(&base);

    // Before any rank: NotRanked.
    let mut engine = incremental_engine(Arc::new(MemorySink::new()));
    assert!(matches!(
        engine.apply_delta(&delta),
        Err(EngineError::NotRanked)
    ));

    // Stateless backend: UnsupportedDelta.
    let mut flat = RankEngine::builder()
        .backend(BackendSpec::FlatPageRank)
        .build()
        .unwrap();
    flat.rank(&base).unwrap();
    assert!(matches!(
        flat.apply_delta(&delta),
        Err(EngineError::UnsupportedDelta { .. })
    ));
}

#[test]
fn apply_delta_rejects_stale_personalization_fast() {
    // The engine's personalization is fixed at build time; once a delta
    // adds a site the old site-layer vector no longer covers the graph.
    // That must surface as a config-level error — not a deep rank failure
    // and never a silently skewed ranking.
    let base = campus();
    let mut v = vec![1.0 / base.n_sites() as f64; base.n_sites()];
    v[0] += 0.25;
    let total: f64 = v.iter().sum();
    v.iter_mut().for_each(|x| *x /= total);
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .site_personalization(v)
        .build()
        .unwrap();
    engine.rank(&base).unwrap();

    let mut delta = GraphDelta::for_graph(&base);
    let s = delta.add_site("uncovered.example");
    let q = delta.add_page(s, "http://uncovered.example/").unwrap();
    delta.add_link(q, base.docs_of_site(SiteId(0))[0]).unwrap();
    let err = engine.apply_delta(&delta).unwrap_err();
    assert!(matches!(err, EngineError::InvalidConfig { .. }), "{err}");
    // A page-growth delta (site count unchanged) still works.
    let mut grow = GraphDelta::for_graph(&base);
    let root = base.docs_of_site(SiteId(2))[0];
    let p = grow
        .add_page(SiteId(2), "http://covered.example/p")
        .unwrap();
    grow.add_link(root, p).unwrap();
    engine.apply_delta(&grow).unwrap();
}

#[test]
fn rank_after_growth_still_goes_incremental() {
    // The rank(graph) path (diff-based) also survives structural growth
    // now: a grown recrawl must not fall back to a full recompute.
    let base = campus();
    let sink = Arc::new(MemorySink::new());
    let mut engine = incremental_engine(sink.clone());
    engine.rank(&base).unwrap();

    let mut delta = GraphDelta::for_graph(&base);
    let root = base.docs_of_site(SiteId(1))[0];
    let p = delta.add_page(SiteId(1), "http://grown.example/q").unwrap();
    delta.add_link(root, p).unwrap();
    let (mutated, _) = base.apply(&delta).unwrap();

    engine.rank(&mutated).unwrap();
    let runs = sink.runs();
    assert_eq!(runs.len(), 2);
    assert!(
        runs[1].sites_reused > 0,
        "growth should not force a full recompute"
    );
    assert_eq!(runs[1].sites_grown, 1);
}
