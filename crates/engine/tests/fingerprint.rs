//! Regression: the delta-composed [`GraphFingerprint`] must equal a
//! from-scratch hash after **every** step of an `exp_churn`-shaped
//! mutation stream — the composition being exact is what lets
//! `RankEngine::apply_delta` refresh its cache key in O(delta).

use std::sync::Arc;

use lmm_engine::{BackendSpec, GraphFingerprint, MemorySink, RankEngine, Staleness};
use lmm_graph::delta::GraphDelta;
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::{DocGraph, SiteId};

fn campus() -> DocGraph {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 500;
    cfg.n_sites = 10;
    cfg.spam_farms.clear();
    cfg.generate().unwrap()
}

/// The same mixed churn shape `exp_churn` drives: every step rewires one
/// site internally; every 2nd grows a site; every 3rd adds a cross link;
/// every 4th appends a whole new site.
fn churn_delta(graph: &DocGraph, step: usize) -> GraphDelta {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    let mut site = (step * 7 + 3) % n_sites;
    while graph.site_size(SiteId(site)) < 3 {
        site = (site + 1) % n_sites;
    }
    let docs = graph.docs_of_site(SiteId(site));
    delta.remove_link(docs[0], docs[1]).unwrap();
    delta.add_link(docs[1], docs[2]).unwrap();
    delta.add_link(docs[2], docs[0]).unwrap();
    if step.is_multiple_of(2) {
        let target = SiteId((step * 5 + 1) % n_sites);
        let root = graph.docs_of_site(target)[0];
        for i in 0..2 {
            let p = delta
                .add_page(target, &format!("http://fp-grow-{step}-{i}.page/"))
                .unwrap();
            delta.add_link(root, p).unwrap();
            delta.add_link(p, root).unwrap();
        }
    }
    if step.is_multiple_of(3) {
        let a = graph.docs_of_site(SiteId((step * 11 + 2) % n_sites))[0];
        let b = graph.docs_of_site(SiteId((step * 13 + 5) % n_sites))[0];
        delta.add_link(a, b).unwrap();
    }
    if step % 4 == 3 {
        let s = delta.add_site(&format!("fp-churn-{step}.example"));
        let mut pages = Vec::new();
        for i in 0..3 {
            pages.push(
                delta
                    .add_page(s, &format!("http://fp-churn-{step}.example/{i}"))
                    .unwrap(),
            );
        }
        for w in pages.windows(2) {
            delta.add_link(w[0], w[1]).unwrap();
        }
        delta.add_link(pages[2], pages[0]).unwrap();
        let anchor = graph.docs_of_site(SiteId(step % n_sites))[0];
        delta.add_link(anchor, pages[0]).unwrap();
        delta.add_link(pages[0], anchor).unwrap();
    }
    delta
}

#[test]
fn composed_fingerprint_matches_scratch_on_every_churn_step() {
    let mut current = campus();
    let mut fp = GraphFingerprint::of(&current);
    for step in 0..12 {
        let delta = churn_delta(&current, step);
        let (mutated, applied) = current.apply(&delta).unwrap();
        fp = fp.compose(&applied);
        assert_eq!(
            fp,
            GraphFingerprint::of(&mutated),
            "step {step}: composed fingerprint diverged from scratch"
        );
        current = mutated;
    }
}

#[test]
fn membership_preserving_deltas_repin_snapshot_tables() {
    // A rewire adds no documents/sites, so the new snapshot must share the
    // previous snapshot's membership storage instead of re-materializing
    // O(docs) tables — the serving-side analogue of the O(delta) refresh.
    let base = campus();
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .build()
        .unwrap();
    engine.rank(&base).unwrap();
    let before = engine.snapshot().unwrap();

    let mut rewire = GraphDelta::for_graph(&base);
    let docs = base.docs_of_site(SiteId(2));
    rewire.remove_link(docs[0], docs[1]).unwrap();
    rewire.add_link(docs[1], docs[0]).unwrap();
    engine.apply_delta(&rewire).unwrap();
    let after = engine.snapshot().unwrap();
    assert!(std::ptr::eq(
        before.members_of_site(SiteId(0)).as_ptr(),
        after.members_of_site(SiteId(0)).as_ptr(),
    ));

    // Growth changes membership: the tables must be rebuilt.
    let (current, _) = base.apply(&rewire).unwrap();
    let mut grow = GraphDelta::for_graph(&current);
    let root = current.docs_of_site(SiteId(0))[0];
    let p = grow.add_page(SiteId(0), "http://repin-grow.page/").unwrap();
    grow.add_link(root, p).unwrap();
    engine.apply_delta(&grow).unwrap();
    let grown = engine.snapshot().unwrap();
    assert!(!std::ptr::eq(
        after.members_of_site(SiteId(1)).as_ptr(),
        grown.members_of_site(SiteId(1)).as_ptr(),
    ));
}

#[test]
fn engine_delta_stream_stays_a_cache_hit_and_localizes_staleness() {
    // End-to-end: the engine's composed fingerprint keeps re-ranks of the
    // mutated graph cache hits across a whole churn stream, and each
    // snapshot's staleness set matches the induced delta's site sets.
    let base = campus();
    let sink = Arc::new(MemorySink::new());
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .damping(0.85)
        .tolerance(1e-10)
        .telemetry(sink.clone())
        .build()
        .unwrap();
    engine.rank(&base).unwrap();

    let mut current = base;
    for step in 0..6 {
        let delta = churn_delta(&current, step);
        let (mutated, applied) = current.apply(&delta).unwrap();
        engine.apply_delta(&delta).unwrap();
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.epoch(), engine.epoch());
        match snap.staleness() {
            Staleness::Full => {
                // Only a SiteRank recompute justifies a full invalidation.
                assert!(
                    applied.cross_links_changed || applied.added_sites > 0,
                    "step {step}: full staleness without a site-layer cause"
                );
            }
            Staleness::Sites(sites) => {
                let mut expected: Vec<usize> = applied
                    .changed_sites
                    .iter()
                    .chain(applied.grown_sites.iter())
                    .copied()
                    .collect();
                expected.sort_unstable();
                assert_eq!(sites, &expected, "step {step}: staleness set mismatch");
            }
            Staleness::Resized { .. } => {
                panic!("step {step}: growth-only churn must never report Resized");
            }
        }
        // The composed fingerprint must make this a cache hit.
        let before = sink.len();
        engine.rank(&mutated).unwrap();
        assert_eq!(sink.len(), before, "step {step}: re-rank was not a hit");
        current = mutated;
    }

    // Telemetry carries the serving epoch: one initial rank + 6 deltas.
    let runs = sink.runs();
    assert_eq!(runs.len(), 7);
    for (i, run) in runs.iter().enumerate() {
        assert_eq!(run.epoch, i as u64 + 1);
    }
}
