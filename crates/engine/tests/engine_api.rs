//! Integration test of the unified engine: all four approaches plus a
//! distributed architecture run through `RankEngine` on one campus graph,
//! and the paper's equivalences hold through the public API —
//! Approach 2 ≡ Approach 4 (Partition Theorem) and distributed ≡ local.

use std::sync::Arc;

use lmm_core::approaches::RankApproach;
use lmm_core::siterank::SiteLayerMethod;
use lmm_engine::{BackendSpec, EngineError, MemorySink, RankEngine, RankOutcome};
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::{DocGraph, DocId, SiteId};
use lmm_p2p::runner::Architecture;

fn campus() -> DocGraph {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 600;
    cfg.n_sites = 12;
    cfg.spam_farms.truncate(1);
    cfg.spam_farms[0].host_site = 5;
    cfg.spam_farms[0].n_pages = 80;
    cfg.generate().expect("campus web")
}

fn ranked(backend: BackendSpec, graph: &DocGraph) -> RankOutcome {
    let mut engine = RankEngine::builder()
        .backend(backend)
        .damping(0.85)
        .tolerance(1e-12)
        .build()
        .expect("valid config");
    engine.rank(graph).expect("rank").clone()
}

#[test]
fn all_four_approaches_run_through_the_engine() {
    let graph = campus();
    for approach in RankApproach::ALL {
        let outcome = ranked(BackendSpec::approach(approach), &graph);
        assert_eq!(outcome.n_docs(), graph.n_docs(), "{approach}");
        let total: f64 = outcome.ranking.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{approach}: sum {total}");
        assert!(outcome.telemetry.converged, "{approach}");
    }
}

#[test]
fn partition_theorem_through_the_engine() {
    // Approach 2 (stationary of the induced global chain W) must equal
    // Approach 4 (the Layered Method) — Theorem 2 through the public API.
    let graph = campus();
    let a2 = ranked(BackendSpec::CentralizedStationary, &graph);
    let a4 = ranked(
        BackendSpec::Layered {
            site_layer: SiteLayerMethod::Stationary,
        },
        &graph,
    );
    let cmp = a2.compare(&a4, 20).expect("same doc set");
    assert!(cmp.linf < 1e-9, "Partition Theorem violated: {cmp}");
    assert!(cmp.top_k_overlap > 0.99, "{cmp}");
}

#[test]
fn distributed_matches_local_within_tolerance() {
    let graph = campus();
    let local = ranked(
        BackendSpec::Layered {
            site_layer: SiteLayerMethod::PageRank,
        },
        &graph,
    );
    for architecture in [
        Architecture::Flat,
        Architecture::SuperPeer { n_groups: 3 },
        Architecture::Hybrid,
    ] {
        let distributed = ranked(BackendSpec::Distributed { architecture }, &graph);
        let cmp = distributed.compare(&local, 15).expect("same doc set");
        assert!(
            cmp.l1 < 1e-6,
            "distributed ({architecture}) diverged from local: {cmp}"
        );
        assert!(
            distributed.telemetry.messages > 0,
            "distributed telemetry must account traffic"
        );
    }
}

#[test]
fn serving_layer_answers_without_recompute() {
    let graph = campus();
    let sink = Arc::new(MemorySink::new());
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Layered {
            site_layer: SiteLayerMethod::PageRank,
        })
        .telemetry(sink.clone())
        .build()
        .expect("valid config");

    // Serving before ranking is a typed error.
    assert!(matches!(engine.top_k(3), Err(EngineError::NotRanked)));

    engine.rank(&graph).expect("rank");
    assert_eq!(sink.len(), 1);

    // Global top-k: sorted, and consistent with score().
    let top = engine.top_k(10).expect("ranked");
    assert_eq!(top.len(), 10);
    for pair in top.windows(2) {
        assert!(pair[0].1 >= pair[1].1);
    }
    let (best, best_score) = top[0];
    assert_eq!(engine.score(best).expect("in range"), best_score);

    // Per-site top-k: members of that site only, sorted.
    let site = SiteId(3);
    let site_top = engine.top_k_for_site(site, 5).expect("ranked");
    assert!(!site_top.is_empty());
    for (doc, score) in &site_top {
        assert_eq!(graph.site_of(*doc), site);
        assert_eq!(engine.score(*doc).expect("in range"), *score);
    }
    assert!(engine.site_score(site).expect("in range").is_some());

    // Re-ranking the same graph serves the cache: no new telemetry.
    engine.rank(&graph).expect("cached");
    assert_eq!(sink.len(), 1);

    // Invalidation forces a recompute.
    engine.invalidate();
    engine.rank(&graph).expect("recompute");
    assert_eq!(sink.len(), 2);

    // Out-of-range queries are typed errors.
    assert!(matches!(
        engine.score(DocId(graph.n_docs())),
        Err(EngineError::OutOfRange { .. })
    ));
    assert!(matches!(
        engine.top_k_for_site(SiteId(graph.n_sites()), 3),
        Err(EngineError::OutOfRange { .. })
    ));
}

#[test]
fn incremental_backend_reuses_unchanged_sites() {
    let graph = campus();
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .build()
        .expect("valid config");
    let first = engine.rank(&graph).expect("initial full run").clone();
    assert_eq!(first.telemetry.sites_recomputed, graph.n_sites());

    // Rewire one intra-site link; only that site should recompute.
    let site = SiteId(2);
    let docs = graph.docs_of_site(site);
    let (a, b, c) = (docs[0], docs[1], docs[docs.len() - 1]);
    let mut builder = lmm_graph::docgraph::DocGraphBuilder::from_graph(&graph);
    builder.remove_link(a, b);
    builder.add_link(b, c).expect("same site");
    let edited = builder.build();

    let second = engine.rank(&edited).expect("incremental refresh").clone();
    assert_eq!(second.telemetry.sites_recomputed, 1);
    assert_eq!(second.telemetry.sites_reused, graph.n_sites() - 1);

    // The refreshed ranking equals a from-scratch layered run.
    let full = ranked(
        BackendSpec::Layered {
            site_layer: SiteLayerMethod::PageRank,
        },
        &edited,
    );
    let cmp = second.compare(&full, 15).expect("same doc set");
    assert!(cmp.l1 < 1e-8, "incremental drifted: {cmp}");
}

#[test]
fn personalization_must_fit_the_graph() {
    let graph = campus();
    let layered = BackendSpec::Layered {
        site_layer: SiteLayerMethod::PageRank,
    };
    // Site-layer vector of the wrong length.
    let mut engine = RankEngine::builder()
        .backend(layered)
        .site_personalization(vec![1.0; graph.n_sites() + 1])
        .build()
        .expect("builder cannot know the graph yet");
    assert!(matches!(
        engine.rank(&graph),
        Err(EngineError::InvalidConfig { .. })
    ));
    // Document-layer key naming a nonexistent site must not be silently
    // ignored.
    let mut engine = RankEngine::builder()
        .backend(layered)
        .local_personalization(SiteId(graph.n_sites()), vec![1.0; 4])
        .build()
        .expect("builder cannot know the graph yet");
    assert!(matches!(
        engine.rank(&graph),
        Err(EngineError::InvalidConfig { .. })
    ));
    // Document-layer vector of the wrong length for a real site.
    let site = SiteId(2);
    let mut engine = RankEngine::builder()
        .backend(layered)
        .local_personalization(site, vec![1.0; graph.site_size(site) + 1])
        .build()
        .expect("builder cannot know the graph yet");
    assert!(matches!(
        engine.rank(&graph),
        Err(EngineError::InvalidConfig { .. })
    ));
    // A correctly sized (normalized) vector ranks fine.
    let size = graph.site_size(site);
    let mut engine = RankEngine::builder()
        .backend(layered)
        .local_personalization(site, vec![1.0 / size as f64; size])
        .build()
        .expect("valid");
    engine
        .rank(&graph)
        .expect("well-shaped personalization ranks");
}

#[test]
fn builder_rejects_invalid_configurations() {
    assert!(RankEngine::builder().damping(0.0).build().is_err());
    assert!(RankEngine::builder().damping(1.0).build().is_err());
    assert!(RankEngine::builder().tolerance(-1.0).build().is_err());
    assert!(RankEngine::builder().max_iters(0).build().is_err());
    assert!(RankEngine::builder()
        .site_personalization(vec![0.0, 0.0])
        .build()
        .is_err());
}

#[test]
fn custom_backends_plug_in() {
    // A toy strategy: uniform scores. Anything implementing Ranker slots
    // into the engine and gains the serving layer for free.
    struct Uniform;
    impl lmm_engine::Ranker for Uniform {
        fn name(&self) -> String {
            "uniform".into()
        }
        fn rank(
            &self,
            graph: &DocGraph,
            _ctx: &lmm_engine::ExecContext,
        ) -> lmm_engine::Result<RankOutcome> {
            Ok(RankOutcome {
                backend: self.name(),
                ranking: lmm_rank::Ranking::uniform(graph.n_docs())
                    .map_err(lmm_engine::EngineError::Rank)?,
                site_rank: None,
                telemetry: lmm_engine::RunTelemetry {
                    backend: self.name(),
                    converged: true,
                    ..lmm_engine::RunTelemetry::default()
                },
            })
        }
    }

    let graph = campus();
    let mut engine = RankEngine::builder()
        .custom_backend(Box::new(Uniform))
        .build()
        .expect("valid config");
    assert_eq!(engine.backend_name(), "uniform");
    let outcome = engine.rank(&graph).expect("rank");
    assert!((outcome.ranking.score(0) - 1.0 / graph.n_docs() as f64).abs() < 1e-12);
}
