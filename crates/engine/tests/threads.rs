//! Regression tests for the `threads` knob.
//!
//! PR 1 plumbed `EngineConfig::threads` through the builder and
//! `ExecContext` but no backend consumed it — the knob was dead. These
//! tests pin the two properties of the fix: the knob now *reaches* every
//! backend, and it is *bit-invisible*: `threads(1)` and `threads(4)` must
//! produce byte-for-byte identical rankings (parallelism changes wall
//! time, never scores).

use lmm_core::siterank::SiteLayerMethod;
use lmm_engine::{BackendSpec, RankEngine};
use lmm_graph::docgraph::DocGraph;
use lmm_graph::generator::CampusWebConfig;

fn campus() -> DocGraph {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 1_200;
    cfg.n_sites = 24;
    cfg.spam_farms.truncate(1);
    cfg.spam_farms[0].host_site = 7;
    cfg.spam_farms[0].n_pages = 150;
    cfg.generate().expect("campus graph")
}

fn rank_with_threads(backend: BackendSpec, graph: &DocGraph, threads: usize) -> Vec<f64> {
    let mut engine = RankEngine::builder()
        .backend(backend)
        .damping(0.85)
        .tolerance(1e-10)
        .threads(threads)
        .build()
        .expect("valid config");
    engine.rank(graph).expect("rank").ranking.scores().to_vec()
}

#[test]
fn threads_knob_is_bit_invisible_across_backends() {
    let graph = campus();
    for backend in [
        BackendSpec::FlatPageRank,
        BackendSpec::CentralizedStationary,
        BackendSpec::Layered {
            site_layer: SiteLayerMethod::PageRank,
        },
        BackendSpec::Layered {
            site_layer: SiteLayerMethod::Stationary,
        },
    ] {
        let serial = rank_with_threads(backend, &graph, 1);
        for threads in [4usize, 0] {
            let parallel = rank_with_threads(backend, &graph, threads);
            assert_eq!(serial.len(), parallel.len());
            let bit_identical = serial
                .iter()
                .zip(&parallel)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                bit_identical,
                "{backend:?}: threads(1) vs threads({threads}) diverged"
            );
        }
    }
}

#[test]
fn incremental_backend_is_bit_invisible_including_refresh() {
    let graph = campus();
    let rank_twice = |threads: usize| -> (Vec<f64>, Vec<f64>) {
        let mut engine = RankEngine::builder()
            .backend(BackendSpec::Incremental)
            .damping(0.85)
            .tolerance(1e-10)
            .threads(threads)
            .build()
            .expect("valid config");
        let first = engine.rank(&graph).expect("rank").ranking.scores().to_vec();
        // Rewire one intra-site link so the refresh path (warm-started
        // partial recompute) runs, then rank again.
        let site = lmm_graph::SiteId(3);
        let docs = graph.docs_of_site(site);
        let mut builder = lmm_graph::docgraph::DocGraphBuilder::from_graph(&graph);
        builder.remove_link(docs[0], docs[1]);
        builder.add_link(docs[1], docs[0]).expect("same-shape edit");
        let edited = builder.build();
        engine.invalidate();
        let second = engine
            .rank(&edited)
            .expect("refresh")
            .ranking
            .scores()
            .to_vec();
        (first, second)
    };
    let (full_1, refresh_1) = rank_twice(1);
    let (full_4, refresh_4) = rank_twice(4);
    assert!(full_1
        .iter()
        .zip(&full_4)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
    assert!(refresh_1
        .iter()
        .zip(&refresh_4)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
}

#[test]
fn threads_knob_reaches_the_context() {
    let engine = RankEngine::builder().threads(3).build().expect("valid");
    assert_eq!(engine.context().threads, 3);
    assert_eq!(engine.config().threads, 3);
}
