//! Property-based tests of the ranking algorithms: PageRank axioms, the
//! gatekeeper ≡ PageRank identity on random chains, and the metric axioms.

use lmm_linalg::{vec_ops, CooMatrix, PowerOptions, StochasticMatrix};
use lmm_rank::gatekeeper::{gatekeeper_distribution, gatekeeper_via_pagerank};
use lmm_rank::metrics;
use lmm_rank::pagerank::PageRank;
use lmm_rank::Ranking;
use proptest::prelude::*;

/// Strategy: a random web-like adjacency over `n` nodes; may contain
/// dangling nodes and disconnected parts.
fn random_adjacency(n: usize, max_edges: usize) -> impl Strategy<Value = StochasticMatrix> {
    prop::collection::vec((0..n, 0..n), 0..max_edges).prop_map(move |edges| {
        let mut coo = CooMatrix::new(n, n);
        for (r, c) in edges {
            coo.push(r, c, 1.0);
        }
        StochasticMatrix::from_adjacency(coo.to_csr()).expect("non-negative")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PageRank always yields a strictly positive distribution (teleport
    /// reaches every page) for any graph, including empty and dangling-heavy
    /// ones.
    #[test]
    fn pagerank_is_positive_distribution(
        n in 1usize..20,
        m in (1usize..20).prop_flat_map(|n| random_adjacency(n, 60).prop_map(move |m| (n, m))).prop_map(|(_, m)| m),
    ) {
        let _ = n;
        let result = PageRank::new().run(&m).expect("pagerank runs");
        let scores = result.ranking.scores();
        prop_assert!(vec_ops::is_distribution(scores, 1e-9));
        prop_assert!(scores.iter().all(|&s| s > 0.0));
    }

    /// The minimal-irreducibility (gatekeeper) construction equals PageRank
    /// with the teleport dangling policy on arbitrary chains — the identity
    /// the paper's Section 2.3.2 relies on.
    #[test]
    fn gatekeeper_equals_pagerank(
        m in (2usize..15).prop_flat_map(|n| random_adjacency(n, 50)),
        alpha in 0.1f64..0.95,
    ) {
        let g = gatekeeper_distribution(&m, alpha, None, &PowerOptions::default())
            .expect("gatekeeper");
        let pr = gatekeeper_via_pagerank(&m, alpha, None, 1e-13).expect("pagerank");
        prop_assert!(
            vec_ops::l1_diff(g.distribution.scores(), pr.scores()) < 1e-7,
            "alpha {}", alpha
        );
    }

    /// Kendall tau axioms: bounded, symmetric, 1 on self.
    #[test]
    fn kendall_tau_axioms(
        wa in prop::collection::vec(0.01f64..1.0, 2..30),
        wb_seed in prop::collection::vec(0.01f64..1.0, 2..30),
    ) {
        let n = wa.len();
        let wb: Vec<f64> = (0..n).map(|i| wb_seed[i % wb_seed.len()]).collect();
        let a = Ranking::from_weights(wa).expect("weights");
        let b = Ranking::from_weights(wb).expect("weights");
        let tau_ab = metrics::kendall_tau(&a, &b);
        let tau_ba = metrics::kendall_tau(&b, &a);
        prop_assert!((-1.0..=1.0).contains(&tau_ab));
        prop_assert!((tau_ab - tau_ba).abs() < 1e-12);
        prop_assert!((metrics::kendall_tau(&a, &a) - 1.0).abs() < 1e-12);
    }

    /// Footrule axioms: zero on self, symmetric, within the n²/2 bound.
    #[test]
    fn footrule_axioms(
        wa in prop::collection::vec(0.01f64..1.0, 2..30),
        wb_seed in prop::collection::vec(0.01f64..1.0, 2..30),
    ) {
        let n = wa.len();
        let wb: Vec<f64> = (0..n).map(|i| wb_seed[i % wb_seed.len()]).collect();
        let a = Ranking::from_weights(wa).expect("weights");
        let b = Ranking::from_weights(wb).expect("weights");
        prop_assert_eq!(metrics::spearman_footrule(&a, &a), 0);
        prop_assert_eq!(
            metrics::spearman_footrule(&a, &b),
            metrics::spearman_footrule(&b, &a)
        );
        prop_assert!(metrics::spearman_footrule(&a, &b) <= (n * n / 2) as u64);
        let norm = metrics::spearman_footrule_normalized(&a, &b);
        prop_assert!((0.0..=1.0).contains(&norm));
    }

    /// Top-k overlap is symmetric, in [0,1], and 1 when comparing a ranking
    /// with itself.
    #[test]
    fn top_k_overlap_axioms(
        wa in prop::collection::vec(0.01f64..1.0, 2..25),
        k in 1usize..30,
    ) {
        let a = Ranking::from_weights(wa.clone()).expect("weights");
        let reversed: Vec<f64> = wa.iter().rev().copied().collect();
        let b = Ranking::from_weights(reversed).expect("weights");
        let o_ab = metrics::top_k_overlap(&a, &b, k);
        let o_ba = metrics::top_k_overlap(&b, &a, k);
        prop_assert!((o_ab - o_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&o_ab));
        prop_assert!((metrics::top_k_overlap(&a, &a, k) - 1.0).abs() < 1e-12);
        prop_assert!(metrics::top_k_jaccard(&a, &b, k) <= o_ab + 1e-12);
    }

    /// Raising damping continuously deforms the vector: nearby damping
    /// values give nearby rankings (no chaotic jumps).
    #[test]
    fn pagerank_continuous_in_damping(
        m in (2usize..12).prop_flat_map(|n| random_adjacency(n, 40)),
        f in 0.2f64..0.9,
    ) {
        let r1 = PageRank::new().damping(f).run(&m).expect("runs");
        let r2 = PageRank::new().damping(f + 0.01).run(&m).expect("runs");
        let dist = vec_ops::l1_diff(r1.ranking.scores(), r2.ranking.scores());
        prop_assert!(dist < 0.2, "jump of {} at f = {}", dist, f);
    }

    /// Ranking::order and Ranking::positions are inverse permutations.
    #[test]
    fn order_positions_inverse(w in prop::collection::vec(0.01f64..1.0, 1..50)) {
        let r = Ranking::from_weights(w).expect("weights");
        let order = r.order();
        let pos = r.positions();
        for (p, &item) in order.iter().enumerate() {
            prop_assert_eq!(pos[item], p);
        }
        // Scores along the order are non-increasing.
        for w in order.windows(2) {
            prop_assert!(r.score(w[0]) >= r.score(w[1]));
        }
    }
}
