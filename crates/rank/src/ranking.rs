//! The [`Ranking`] type: a probability-distribution score vector plus the
//! order it induces.

use crate::error::{RankError, Result};
use lmm_linalg::vec_ops;

/// A ranking over `n` items: non-negative scores summing to one, with
/// helpers for the induced descending order.
///
/// Ties are broken by item index (lower index first) so orders are
/// deterministic — important for reproducible experiment tables.
///
/// # Example
/// ```
/// use lmm_rank::Ranking;
/// # fn main() -> Result<(), lmm_rank::RankError> {
/// let r = Ranking::from_scores(vec![0.2, 0.5, 0.3])?;
/// assert_eq!(r.order(), vec![1, 2, 0]);
/// assert_eq!(r.position_of(1), 0); // item 1 is ranked first
/// assert_eq!(r.top_k(2), vec![1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ranking {
    scores: Vec<f64>,
}

impl Ranking {
    /// Wraps a score vector that is already a probability distribution.
    ///
    /// # Errors
    /// Returns [`RankError::Linalg`] when the vector has negative / non-finite
    /// entries or does not sum to 1 within `1e-6`.
    pub fn from_scores(scores: Vec<f64>) -> Result<Self> {
        vec_ops::check_distribution(&scores, 1e-6)?;
        Ok(Self { scores })
    }

    /// Normalizes an arbitrary non-negative score vector into a ranking.
    ///
    /// # Errors
    /// Returns [`RankError::Linalg`] when the vector is empty, contains
    /// negative or non-finite entries, or sums to zero.
    pub fn from_weights(mut weights: Vec<f64>) -> Result<Self> {
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(RankError::Linalg(
                    lmm_linalg::LinalgError::InvalidProbability { index: i, value: w },
                ));
            }
        }
        vec_ops::normalize_l1(&mut weights)?;
        Ok(Self { scores: weights })
    }

    /// The empty ranking over zero items — the placeholder a layered
    /// pipeline stores for a tombstoned (removed) site slot, whose member
    /// set is empty and whose rank weight is zero.
    #[must_use]
    pub fn empty() -> Self {
        Self { scores: Vec::new() }
    }

    /// The uniform ranking over `n` items.
    ///
    /// # Errors
    /// Returns [`RankError::Empty`] when `n == 0`.
    pub fn uniform(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(RankError::Empty);
        }
        Ok(Self {
            scores: vec_ops::uniform(n),
        })
    }

    /// Number of ranked items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Returns `true` when the ranking covers no items (only
    /// [`Ranking::empty`] constructs such a value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// The score vector (a probability distribution).
    #[must_use]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Score of item `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn score(&self, i: usize) -> f64 {
        self.scores[i]
    }

    /// Consumes the ranking, returning the raw score vector.
    #[must_use]
    pub fn into_scores(self) -> Vec<f64> {
        self.scores
    }

    /// Item indices sorted by descending score, ties broken by index.
    #[must_use]
    pub fn order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .expect("ranking scores are finite")
                .then_with(|| a.cmp(&b))
        });
        idx
    }

    /// For each item, its 0-based position in the descending order
    /// (`positions()[item] == rank of item`).
    #[must_use]
    pub fn positions(&self) -> Vec<usize> {
        let order = self.order();
        let mut pos = vec![0usize; order.len()];
        for (p, &item) in order.iter().enumerate() {
            pos[item] = p;
        }
        pos
    }

    /// 0-based rank position of a single item.
    ///
    /// # Panics
    /// Panics if `item` is out of bounds.
    #[must_use]
    pub fn position_of(&self, item: usize) -> usize {
        assert!(item < self.scores.len(), "item out of bounds");
        self.positions()[item]
    }

    /// The `k` top-ranked item indices (all items when `k >= len`).
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut order = self.order();
        order.truncate(k);
        order
    }

    /// Entropy (nats) of the score distribution — a dispersion diagnostic
    /// used by the experiment harness (`0` = all mass on one item).
    #[must_use]
    pub fn entropy(&self) -> f64 {
        self.scores
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.ln())
            .sum()
    }
}

impl AsRef<[f64]> for Ranking {
    fn as_ref(&self) -> &[f64] {
        &self.scores
    }
}

impl std::fmt::Display for Ranking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ranking[")?;
        for (i, s) in self.scores.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s:.4}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_scores_validates() {
        assert!(Ranking::from_scores(vec![0.5, 0.5]).is_ok());
        assert!(Ranking::from_scores(vec![0.5, 0.6]).is_err());
        assert!(Ranking::from_scores(vec![-0.5, 1.5]).is_err());
        assert!(Ranking::from_scores(vec![]).is_err());
    }

    #[test]
    fn from_weights_normalizes() {
        let r = Ranking::from_weights(vec![1.0, 3.0]).unwrap();
        assert_eq!(r.scores(), &[0.25, 0.75]);
    }

    #[test]
    fn from_weights_rejects_negative_and_zero_sum() {
        assert!(Ranking::from_weights(vec![1.0, -1.0]).is_err());
        assert!(Ranking::from_weights(vec![0.0, 0.0]).is_err());
    }

    #[test]
    fn order_descending_with_index_ties() {
        let r = Ranking::from_scores(vec![0.25, 0.25, 0.5]).unwrap();
        assert_eq!(r.order(), vec![2, 0, 1]);
    }

    #[test]
    fn positions_inverse_of_order() {
        let r = Ranking::from_scores(vec![0.1, 0.4, 0.2, 0.3]).unwrap();
        let order = r.order();
        let pos = r.positions();
        for (p, &item) in order.iter().enumerate() {
            assert_eq!(pos[item], p);
        }
        assert_eq!(r.position_of(1), 0);
    }

    #[test]
    fn top_k_truncates() {
        let r = Ranking::from_scores(vec![0.1, 0.4, 0.2, 0.3]).unwrap();
        assert_eq!(r.top_k(2), vec![1, 3]);
        assert_eq!(r.top_k(10).len(), 4);
    }

    #[test]
    fn uniform_entropy_is_log_n() {
        let r = Ranking::uniform(8).unwrap();
        assert!((r.entropy() - (8f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn concentrated_entropy_is_zero() {
        let r = Ranking::from_scores(vec![1.0, 0.0, 0.0]).unwrap();
        assert_eq!(r.entropy(), 0.0);
    }

    #[test]
    fn display_shows_scores() {
        let r = Ranking::from_scores(vec![0.5, 0.5]).unwrap();
        assert!(r.to_string().contains("0.5000"));
    }
}
