//! Error type for ranking algorithms.

use std::error::Error as StdError;
use std::fmt;

use lmm_linalg::LinalgError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, RankError>;

/// Errors produced by ranking computations.
#[derive(Debug, Clone, PartialEq)]
pub enum RankError {
    /// A damping / mixing factor lies outside the open interval `(0, 1)`.
    InvalidDamping {
        /// The offending value.
        value: f64,
    },
    /// A personalization vector is not a probability distribution of the
    /// right length.
    InvalidPersonalization {
        /// Human-readable cause.
        reason: &'static str,
    },
    /// A block/partition labeling is inconsistent with the matrix.
    InvalidPartition {
        /// Human-readable cause.
        reason: String,
    },
    /// The underlying linear algebra failed (dimension mismatch, divergence,
    /// malformed matrix, ...).
    Linalg(LinalgError),
    /// The input graph/matrix is empty.
    Empty,
}

impl fmt::Display for RankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankError::InvalidDamping { value } => {
                write!(
                    f,
                    "damping factor {value} must lie strictly between 0 and 1"
                )
            }
            RankError::InvalidPersonalization { reason } => {
                write!(f, "invalid personalization vector: {reason}")
            }
            RankError::InvalidPartition { reason } => {
                write!(f, "invalid partition: {reason}")
            }
            RankError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            RankError::Empty => write!(f, "ranking requires a non-empty graph"),
        }
    }
}

impl StdError for RankError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            RankError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for RankError {
    fn from(e: LinalgError) -> Self {
        RankError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(RankError::InvalidDamping { value: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(RankError::Empty.to_string().contains("non-empty"));
    }

    #[test]
    fn linalg_source_preserved() {
        let e = RankError::from(LinalgError::Empty);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<E: StdError + Send + Sync + 'static>() {}
        assert_bounds::<RankError>();
    }
}
