//! The BlockRank baseline (Kamvar, Haveliwala, Manning & Golub 2003).
//!
//! BlockRank exploits the block structure of the web: local PageRanks per
//! block, a block-level graph whose edge weights are **sums of local
//! PageRank values of the source pages**, and a warm-started global
//! PageRank. The paper (Section 3.2) contrasts this with its own SiteGraph:
//! BlockRank's block weights depend on an earlier computation stage
//! (serializing the pipeline), while the LMM SiteGraph only counts SiteLinks
//! and so allows SiteRank and local DocRanks to run in parallel.
//!
//! Implemented faithfully so the experiment harness can compare both the
//! quality and the dependency structure of the two aggregation schemes.

use crate::error::{RankError, Result};
use crate::pagerank::{PageRank, PageRankConfig, PageRankResult};
use crate::ranking::Ranking;
use lmm_linalg::{CooMatrix, CsrMatrix, StochasticMatrix};

/// Per-block view of a partitioned graph: the intra-block adjacency and the
/// local→global index mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSubgraph {
    /// Intra-block adjacency (dimensions = block size).
    pub adjacency: CsrMatrix,
    /// `members[local] = global` index mapping, ascending.
    pub members: Vec<usize>,
}

/// Splits `adjacency` into per-block intra-block subgraphs.
///
/// # Errors
/// Returns [`RankError::InvalidPartition`] when `block_of` has the wrong
/// length or references a block `>= n_blocks`, and [`RankError::Empty`] when
/// some block has no members.
pub fn partition_subgraphs(
    adjacency: &CsrMatrix,
    block_of: &[usize],
    n_blocks: usize,
) -> Result<Vec<BlockSubgraph>> {
    let n = adjacency.nrows();
    if block_of.len() != n {
        return Err(RankError::InvalidPartition {
            reason: format!(
                "block_of has length {} but the graph has {n} nodes",
                block_of.len()
            ),
        });
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_blocks];
    for (node, &b) in block_of.iter().enumerate() {
        if b >= n_blocks {
            return Err(RankError::InvalidPartition {
                reason: format!("node {node} assigned to block {b} >= {n_blocks}"),
            });
        }
        members[b].push(node);
    }
    if let Some(empty) = members.iter().position(Vec::is_empty) {
        return Err(RankError::InvalidPartition {
            reason: format!("block {empty} has no members"),
        });
    }
    // Global -> local index within the node's own block.
    let mut local_of = vec![0usize; n];
    for mem in &members {
        for (local, &global) in mem.iter().enumerate() {
            local_of[global] = local;
        }
    }
    let mut blocks = Vec::with_capacity(n_blocks);
    for (b, mem) in members.iter().enumerate() {
        let mut coo = CooMatrix::new(mem.len(), mem.len());
        for &global in mem {
            let (cols, vals) = adjacency.row(global);
            for (&dst, &w) in cols.iter().zip(vals) {
                if block_of[dst] == b {
                    coo.push(local_of[global], local_of[dst], w);
                }
            }
        }
        blocks.push(BlockSubgraph {
            adjacency: coo.to_csr(),
            members: mem.clone(),
        });
    }
    Ok(blocks)
}

/// Result of the BlockRank pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockRankResult {
    /// Local PageRank within each block (indexed by block, then local id).
    pub local_ranks: Vec<Ranking>,
    /// The block-level ranking (over blocks).
    pub block_ranking: Ranking,
    /// The aggregated approximation `x0(d) = b(block(d)) * l(d)` over all
    /// nodes — BlockRank's stage-3 output.
    pub approximation: Ranking,
    /// The refined global PageRank warm-started from `approximation`.
    pub refined: PageRankResult,
    /// Iterations the warm-started global phase needed.
    pub warm_iterations: usize,
}

/// Runs the BlockRank pipeline on a global adjacency matrix partitioned by
/// `block_of`.
///
/// # Errors
/// Propagates partition errors from [`partition_subgraphs`] and PageRank
/// errors from each stage.
pub fn blockrank(
    adjacency: &CsrMatrix,
    block_of: &[usize],
    n_blocks: usize,
    config: &PageRankConfig,
) -> Result<BlockRankResult> {
    let n = adjacency.nrows();
    if n == 0 {
        return Err(RankError::Empty);
    }
    let blocks = partition_subgraphs(adjacency, block_of, n_blocks)?;

    // Stage 1: local PageRank per block.
    let mut local_ranks = Vec::with_capacity(n_blocks);
    for block in &blocks {
        let result =
            PageRank::from_config(config.clone()).run_adjacency(block.adjacency.clone())?;
        local_ranks.push(result.ranking);
    }
    // Expand local ranks to a global-indexed lookup.
    let mut local_score = vec![0.0f64; n];
    for (block, ranks) in blocks.iter().zip(&local_ranks) {
        for (local, &global) in block.members.iter().enumerate() {
            local_score[global] = ranks.score(local);
        }
    }

    // Stage 2: block graph weighted by local PageRank of source pages.
    // B[I][J] = sum over edges (i in I, j in J) of l(i) * M_ij, where M is
    // the row-normalized adjacency. This is the data dependency the LMM
    // SiteGraph avoids.
    let row_sums = adjacency.row_sums();
    let mut bcoo = CooMatrix::new(n_blocks, n_blocks);
    for (src, &bsrc) in block_of.iter().enumerate() {
        if row_sums[src] == 0.0 {
            continue;
        }
        let (cols, vals) = adjacency.row(src);
        let scale = local_score[src] / row_sums[src];
        for (&dst, &w) in cols.iter().zip(vals) {
            bcoo.push(bsrc, block_of[dst], scale * w);
        }
    }
    let block_result = PageRank::from_config(config.clone()).run_adjacency(bcoo.to_csr())?;
    let block_ranking = block_result.ranking;

    // Stage 3: aggregate approximation.
    let weights: Vec<f64> = (0..n)
        .map(|d| block_ranking.score(block_of[d]) * local_score[d])
        .collect();
    let approximation = Ranking::from_weights(weights)?;

    // Stage 4: warm-started global PageRank.
    let m = StochasticMatrix::from_adjacency(adjacency.clone())?;
    let refined = PageRank::from_config(config.clone())
        .initial(approximation.scores().to_vec())
        .run(&m)?;
    let warm_iterations = refined.report.iterations;

    Ok(BlockRankResult {
        local_ranks,
        block_ranking,
        approximation,
        refined,
        warm_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_linalg::vec_ops;

    /// Two 3-node blocks: a cycle in block 0, a chain in block 1, with
    /// cross links 2 -> 3 and 5 -> 0.
    fn two_block_graph() -> (CsrMatrix, Vec<usize>) {
        let mut coo = CooMatrix::new(6, 6);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 1.0);
        coo.push(2, 0, 1.0);
        coo.push(3, 4, 1.0);
        coo.push(4, 5, 1.0);
        coo.push(5, 3, 1.0);
        coo.push(2, 3, 1.0);
        coo.push(5, 0, 1.0);
        (coo.to_csr(), vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn partition_extracts_intra_block_edges_only() {
        let (adj, block_of) = two_block_graph();
        let blocks = partition_subgraphs(&adj, &block_of, 2).unwrap();
        assert_eq!(blocks[0].members, vec![0, 1, 2]);
        assert_eq!(blocks[1].members, vec![3, 4, 5]);
        // Each block keeps its 3-cycle but loses the cross edge.
        assert_eq!(blocks[0].adjacency.nnz(), 3);
        assert_eq!(blocks[1].adjacency.nnz(), 3);
    }

    #[test]
    fn partition_validates_labels() {
        let (adj, _) = two_block_graph();
        assert!(partition_subgraphs(&adj, &[0, 0, 0], 1).is_err()); // wrong length
        assert!(partition_subgraphs(&adj, &[0, 0, 0, 0, 0, 7], 2).is_err()); // bad label
        assert!(partition_subgraphs(&adj, &[0; 6], 2).is_err()); // empty block 1
    }

    #[test]
    fn blockrank_produces_distributions() {
        let (adj, block_of) = two_block_graph();
        let r = blockrank(&adj, &block_of, 2, &PageRankConfig::default()).unwrap();
        assert!((r.approximation.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((r.block_ranking.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(r.local_ranks.len(), 2);
    }

    #[test]
    fn refined_matches_flat_pagerank() {
        let (adj, block_of) = two_block_graph();
        let r = blockrank(&adj, &block_of, 2, &PageRankConfig::default()).unwrap();
        let flat = PageRank::new().run_adjacency(adj).unwrap();
        assert!(
            vec_ops::l1_diff(r.refined.ranking.scores(), flat.ranking.scores()) < 1e-9,
            "warm-started global PageRank must converge to the flat fixed point"
        );
    }

    #[test]
    fn warm_start_not_slower_than_cold() {
        let (adj, block_of) = two_block_graph();
        let r = blockrank(&adj, &block_of, 2, &PageRankConfig::default()).unwrap();
        let flat = PageRank::new().run_adjacency(adj).unwrap();
        // The approximation is close to the fixed point, so the warm start
        // should need at most as many iterations (+1 slack for ties).
        assert!(r.warm_iterations <= flat.report.iterations + 1);
    }

    #[test]
    fn symmetric_blocks_rank_equally() {
        // Two identical 2-cycles with symmetric cross links.
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(2, 3, 1.0);
        coo.push(3, 2, 1.0);
        coo.push(0, 2, 1.0);
        coo.push(2, 0, 1.0);
        let r = blockrank(&coo.to_csr(), &[0, 0, 1, 1], 2, &PageRankConfig::default()).unwrap();
        assert!((r.block_ranking.score(0) - r.block_ranking.score(1)).abs() < 1e-9);
    }
}
