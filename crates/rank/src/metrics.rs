//! Rank-comparison metrics for the evaluation harness.
//!
//! The paper's evaluation is qualitative (top-15 lists, spam domination);
//! these metrics quantify the same comparisons: Kendall τ and Spearman
//! footrule between two rankings, top-k overlap, and the share of
//! spam-labeled items in the top-k.

use crate::ranking::Ranking;

/// Kendall rank-correlation coefficient (τ-a, no tie handling) between the
/// orders induced by two rankings of the same item set.
///
/// Returns a value in `[-1, 1]`: 1 for identical orders, −1 for exactly
/// reversed orders. Computed in `O(n log n)` by inversion counting.
///
/// # Panics
/// Panics if the rankings cover different numbers of items.
///
/// # Example
/// ```
/// use lmm_rank::{metrics::kendall_tau, Ranking};
/// # fn main() -> Result<(), lmm_rank::RankError> {
/// let a = Ranking::from_scores(vec![0.5, 0.3, 0.2])?;
/// let b = Ranking::from_scores(vec![0.2, 0.3, 0.5])?;
/// assert!((kendall_tau(&a, &a) - 1.0).abs() < 1e-12);
/// assert!((kendall_tau(&a, &b) + 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn kendall_tau(a: &Ranking, b: &Ranking) -> f64 {
    assert_eq!(a.len(), b.len(), "rankings must cover the same items");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    // Walk items in a's order; the sequence of their positions in b has one
    // inversion per discordant pair.
    let b_pos = b.positions();
    let seq: Vec<usize> = a.order().into_iter().map(|item| b_pos[item]).collect();
    let inversions = count_inversions(seq);
    let pairs = (n * (n - 1) / 2) as f64;
    1.0 - 2.0 * inversions as f64 / pairs
}

/// Counts inversions of a permutation by merge sort, `O(n log n)`.
fn count_inversions(mut seq: Vec<usize>) -> u64 {
    let mut buf = vec![0usize; seq.len()];
    merge_count(&mut seq, &mut buf)
}

fn merge_count(seq: &mut [usize], buf: &mut [usize]) -> u64 {
    let n = seq.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = seq.split_at_mut(mid);
    let mut inv = merge_count(left, &mut buf[..mid]) + merge_count(right, &mut buf[mid..]);
    // Merge while counting cross inversions.
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            buf[k] = left[i];
            i += 1;
        } else {
            buf[k] = right[j];
            inv += (left.len() - i) as u64;
            j += 1;
        }
        k += 1;
    }
    while i < left.len() {
        buf[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buf[k] = right[j];
        j += 1;
        k += 1;
    }
    seq.copy_from_slice(&buf[..n]);
    inv
}

/// Spearman footrule distance: `Σ_i |pos_a(i) − pos_b(i)|`.
///
/// # Panics
/// Panics if the rankings cover different numbers of items.
#[must_use]
pub fn spearman_footrule(a: &Ranking, b: &Ranking) -> u64 {
    assert_eq!(a.len(), b.len(), "rankings must cover the same items");
    let pa = a.positions();
    let pb = b.positions();
    pa.iter()
        .zip(&pb)
        .map(|(&x, &y)| x.abs_diff(y) as u64)
        .sum()
}

/// Spearman footrule normalized into `[0, 1]` (0 = identical orders,
/// 1 = maximally displaced). The maximum of the footrule is `⌊n²/2⌋`.
///
/// # Panics
/// Panics if the rankings cover different numbers of items.
#[must_use]
pub fn spearman_footrule_normalized(a: &Ranking, b: &Ranking) -> f64 {
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let max = (n * n / 2) as f64;
    spearman_footrule(a, b) as f64 / max
}

/// Fraction of the top-`k` of `a` that also appears in the top-`k` of `b`
/// (symmetric). `k` is clamped to the ranking length.
///
/// # Panics
/// Panics if the rankings cover different numbers of items or `k == 0`.
#[must_use]
pub fn top_k_overlap(a: &Ranking, b: &Ranking, k: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "rankings must cover the same items");
    assert!(k > 0, "k must be positive");
    let k = k.min(a.len());
    let set_a: std::collections::HashSet<usize> = a.top_k(k).into_iter().collect();
    let hits = b.top_k(k).into_iter().filter(|i| set_a.contains(i)).count();
    hits as f64 / k as f64
}

/// Jaccard similarity of the top-`k` sets of two rankings.
///
/// # Panics
/// Panics if the rankings cover different numbers of items or `k == 0`.
#[must_use]
pub fn top_k_jaccard(a: &Ranking, b: &Ranking, k: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "rankings must cover the same items");
    assert!(k > 0, "k must be positive");
    let k = k.min(a.len());
    let set_a: std::collections::HashSet<usize> = a.top_k(k).into_iter().collect();
    let set_b: std::collections::HashSet<usize> = b.top_k(k).into_iter().collect();
    let inter = set_a.intersection(&set_b).count();
    let union = set_a.union(&set_b).count();
    inter as f64 / union as f64
}

/// Share of the top-`k` items carrying a boolean label (e.g. "is spam") —
/// the quantitative form of the paper's Figure 3 vs Figure 4 comparison.
///
/// # Panics
/// Panics if `labels.len() != ranking.len()` or `k == 0`.
#[must_use]
pub fn labeled_share_at_k(ranking: &Ranking, labels: &[bool], k: usize) -> f64 {
    assert_eq!(labels.len(), ranking.len(), "labels must cover all items");
    assert!(k > 0, "k must be positive");
    let k = k.min(ranking.len());
    let hits = ranking.top_k(k).into_iter().filter(|&i| labels[i]).count();
    hits as f64 / k as f64
}

/// Precision@k against a relevance labeling — alias of
/// [`labeled_share_at_k`] with retrieval terminology.
#[must_use]
pub fn precision_at_k(ranking: &Ranking, relevant: &[bool], k: usize) -> f64 {
    labeled_share_at_k(ranking, relevant, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(scores: Vec<f64>) -> Ranking {
        Ranking::from_weights(scores).unwrap()
    }

    #[test]
    fn tau_identity_and_reverse() {
        let a = r(vec![4.0, 3.0, 2.0, 1.0]);
        let b = r(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((kendall_tau(&a, &a) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_single_swap() {
        // Orders: a = [0,1,2,3]; b = [1,0,2,3] -> one discordant pair of 6.
        let a = r(vec![4.0, 3.0, 2.0, 1.0]);
        let b = r(vec![3.0, 4.0, 2.0, 1.0]);
        let expected = 1.0 - 2.0 * 1.0 / 6.0;
        assert!((kendall_tau(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn tau_symmetric() {
        let a = r(vec![5.0, 1.0, 4.0, 2.0, 3.0]);
        let b = r(vec![1.0, 2.0, 5.0, 4.0, 3.0]);
        assert!((kendall_tau(&a, &b) - kendall_tau(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn inversion_count_known() {
        assert_eq!(count_inversions(vec![0, 1, 2]), 0);
        assert_eq!(count_inversions(vec![2, 1, 0]), 3);
        assert_eq!(count_inversions(vec![1, 0, 2]), 1);
        assert_eq!(count_inversions(vec![3, 1, 2, 0]), 5);
    }

    #[test]
    fn footrule_identity_zero() {
        let a = r(vec![3.0, 2.0, 1.0]);
        assert_eq!(spearman_footrule(&a, &a), 0);
        assert_eq!(spearman_footrule_normalized(&a, &a), 0.0);
    }

    #[test]
    fn footrule_reverse_is_max() {
        let a = r(vec![4.0, 3.0, 2.0, 1.0]);
        let b = r(vec![1.0, 2.0, 3.0, 4.0]);
        // n = 4: max footrule = floor(16/2) = 8.
        assert_eq!(spearman_footrule(&a, &b), 8);
        assert!((spearman_footrule_normalized(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_and_jaccard() {
        let a = r(vec![4.0, 3.0, 2.0, 1.0]); // top-2 {0,1}
        let b = r(vec![4.0, 1.0, 3.0, 2.0]); // top-2 {0,2}
        assert!((top_k_overlap(&a, &b, 2) - 0.5).abs() < 1e-12);
        assert!((top_k_jaccard(&a, &b, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((top_k_overlap(&a, &b, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn labeled_share() {
        let a = r(vec![4.0, 3.0, 2.0, 1.0]);
        let spam = [true, false, true, false];
        assert!((labeled_share_at_k(&a, &spam, 2) - 0.5).abs() < 1e-12);
        assert!((labeled_share_at_k(&a, &spam, 4) - 0.5).abs() < 1e-12);
        assert_eq!(precision_at_k(&a, &spam, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn tau_length_mismatch_panics() {
        let a = r(vec![1.0, 2.0]);
        let b = r(vec![1.0, 2.0, 3.0]);
        let _ = kendall_tau(&a, &b);
    }

    #[test]
    fn tau_trivial_sizes() {
        let a = r(vec![1.0]);
        assert_eq!(kendall_tau(&a, &a), 1.0);
    }
}
