//! Kleinberg's HITS algorithm (hubs and authorities).
//!
//! The paper reviews HITS as the other prominent link-based ranking method
//! and notes its instability relative to PageRank; we implement it as a
//! baseline for the evaluation harness. Iteration on the (possibly weighted)
//! adjacency matrix `A`:
//!
//! ```text
//! a ← Aᵀ h     (authority: pointed at by good hubs)
//! h ← A a      (hub: points at good authorities)
//! ```
//!
//! with normalization each round.

use crate::error::{RankError, Result};
use crate::ranking::Ranking;
use lmm_linalg::{vec_ops, ConvergenceReport, CsrMatrix};

/// Normalization used between HITS rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HitsNorm {
    /// L1 normalization — scores form probability distributions, directly
    /// comparable with PageRank vectors.
    #[default]
    L1,
    /// L2 normalization — Kleinberg's original formulation.
    L2,
}

/// Options for the HITS iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct HitsConfig {
    /// Convergence tolerance on the L1 residual of the authority vector.
    pub tol: f64,
    /// Iteration budget.
    pub max_iters: usize,
    /// Normalization flavor.
    pub norm: HitsNorm,
}

impl Default for HitsConfig {
    fn default() -> Self {
        Self {
            tol: 1e-12,
            max_iters: 10_000,
            norm: HitsNorm::L1,
        }
    }
}

/// Result of a HITS computation.
#[derive(Debug, Clone, PartialEq)]
pub struct HitsResult {
    /// Authority scores (L1-normalized regardless of the internal norm, so
    /// they are comparable across configurations).
    pub authorities: Ranking,
    /// Hub scores (L1-normalized likewise).
    pub hubs: Ranking,
    /// Convergence statistics (iterations, residual on authorities).
    pub report: ConvergenceReport,
}

/// Runs HITS on an adjacency matrix (entries are link weights; use 0/1 for
/// the classical unweighted algorithm).
///
/// # Errors
/// * [`RankError::Empty`] for an empty matrix or a graph with no edges;
/// * [`RankError::Linalg`] for a non-square matrix or non-convergence.
///
/// # Example
/// ```
/// use lmm_linalg::CooMatrix;
/// use lmm_rank::hits::{hits, HitsConfig};
///
/// # fn main() -> Result<(), lmm_rank::RankError> {
/// // Pages 1 and 2 both point at page 0.
/// let mut coo = CooMatrix::new(3, 3);
/// coo.push(1, 0, 1.0);
/// coo.push(2, 0, 1.0);
/// let r = hits(&coo.to_csr(), &HitsConfig::default())?;
/// assert_eq!(r.authorities.order()[0], 0); // page 0 is the top authority
/// # Ok(())
/// # }
/// ```
pub fn hits(adjacency: &CsrMatrix, config: &HitsConfig) -> Result<HitsResult> {
    let n = adjacency.nrows();
    if n == 0 {
        return Err(RankError::Empty);
    }
    if !adjacency.is_square() {
        return Err(RankError::Linalg(lmm_linalg::LinalgError::NotSquare {
            rows: adjacency.nrows(),
            cols: adjacency.ncols(),
        }));
    }
    if adjacency.nnz() == 0 {
        return Err(RankError::Empty);
    }

    let normalize = |x: &mut [f64], norm: HitsNorm| -> Result<()> {
        let s = match norm {
            HitsNorm::L1 => vec_ops::l1_norm(x),
            HitsNorm::L2 => vec_ops::l2_norm(x),
        };
        if !(s.is_finite() && s > 0.0) {
            return Err(RankError::Linalg(
                lmm_linalg::LinalgError::NotDistribution { sum: s },
            ));
        }
        vec_ops::scale(x, 1.0 / s);
        Ok(())
    };

    let mut h = vec![1.0 / n as f64; n];
    let mut a = vec![0.0; n];
    let mut a_prev = vec![0.0; n];
    let mut report = ConvergenceReport {
        iterations: 0,
        residual: f64::INFINITY,
        converged: false,
    };
    for iter in 1..=config.max_iters {
        adjacency.apply_transpose_into(&h, &mut a)?;
        normalize(&mut a, config.norm)?;
        adjacency.apply_into(&a, &mut h)?;
        normalize(&mut h, config.norm)?;
        let residual = vec_ops::l1_diff(&a, &a_prev);
        a_prev.copy_from_slice(&a);
        report = ConvergenceReport {
            iterations: iter,
            residual,
            converged: residual < config.tol,
        };
        if report.converged {
            break;
        }
    }
    if !report.converged {
        return Err(RankError::Linalg(lmm_linalg::LinalgError::NotConverged {
            iterations: report.iterations,
            residual: report.residual,
        }));
    }
    // Always expose L1-normalized distributions.
    vec_ops::normalize_l1(&mut a)?;
    vec_ops::normalize_l1(&mut h)?;
    Ok(HitsResult {
        authorities: Ranking::from_scores(a)?,
        hubs: Ranking::from_scores(h)?,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_linalg::CooMatrix;

    fn star_into_zero(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 1..n {
            coo.push(i, 0, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn star_authority_is_center() {
        let r = hits(&star_into_zero(5), &HitsConfig::default()).unwrap();
        assert_eq!(r.authorities.order()[0], 0);
        // The center has no out-links: hub score 0.
        assert_eq!(r.hubs.score(0), 0.0);
        // All spokes are equally good hubs.
        for i in 1..5 {
            assert!((r.hubs.score(i) - 0.25).abs() < 1e-10);
        }
    }

    #[test]
    fn l2_norm_same_order_as_l1() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(0, 2, 1.0);
        coo.push(1, 2, 1.0);
        coo.push(3, 2, 1.0);
        coo.push(2, 0, 1.0);
        let m = coo.to_csr();
        let l1 = hits(&m, &HitsConfig::default()).unwrap();
        let l2 = hits(
            &m,
            &HitsConfig {
                norm: HitsNorm::L2,
                ..HitsConfig::default()
            },
        )
        .unwrap();
        assert_eq!(l1.authorities.order(), l2.authorities.order());
    }

    #[test]
    fn empty_graph_rejected() {
        let coo = CooMatrix::new(3, 3);
        assert!(matches!(
            hits(&coo.to_csr(), &HitsConfig::default()),
            Err(RankError::Empty)
        ));
    }

    #[test]
    fn scores_are_distributions() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 1.0);
        coo.push(2, 0, 1.0);
        let r = hits(&coo.to_csr(), &HitsConfig::default()).unwrap();
        assert!((r.authorities.scores().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((r.hubs.scores().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tightly_knit_community_dominates() {
        // The TKC effect the paper criticizes: a 3-clique outranks a single
        // popular-but-isolated page.
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..3usize {
            for j in 0..3usize {
                if i != j {
                    coo.push(i, j, 1.0);
                }
            }
        }
        coo.push(3, 4, 1.0); // page 4 pointed at by one page only
        let r = hits(&coo.to_csr(), &HitsConfig::default()).unwrap();
        assert!(r.authorities.score(0) > r.authorities.score(4));
        // The isolated page's authority is crushed to (numerically) zero.
        assert!(r.authorities.score(4) < 1e-6);
    }
}
