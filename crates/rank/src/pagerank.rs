//! Classical PageRank via **maximal irreducibility** (eq. 1 of the paper):
//! `M̂ = f·M + (1−f)/N·e·eᵀ`, generalized with a personalization vector `v`
//! (`M̂ = f·M + (1−f)·e·vᵀ`) and explicit dangling-row policies.
//!
//! The Google matrix is never materialized; each power-method step applies
//! the factored operator `y = f·(Mᵀx + dangling) + (1−f)·v` in `O(nnz)`.
//! The `Mᵀx` term runs through the pull-mode
//! [`StationaryOperator`] — `Mᵀ` is materialized once per
//! [`PageRank::run`] and each step is a row-wise gather, parallelized
//! across the builder's [`threads`](PageRank::threads) (bit-identical at
//! every thread count).

use std::sync::Arc;

use crate::error::{RankError, Result};
use crate::ranking::Ranking;
use lmm_linalg::{
    power_method_pool, vec_ops, Acceleration, ConvergenceReport, CsrMatrix, DanglingPolicy,
    DenseMatrix, LinearOperator, PowerOptions, StationaryOperator, StochasticMatrix,
};
use lmm_par::ThreadPool;

/// Plain-data PageRank parameters (damping, convergence budget, dangling
/// policy). Personalization and warm starts live on the [`PageRank`] builder
/// because their dimension is matrix-specific.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor `f` — probability of following a link rather than
    /// teleporting. Must lie strictly in `(0, 1)`.
    pub damping: f64,
    /// Convergence tolerance on the L1 residual between iterates.
    pub tol: f64,
    /// Iteration budget for the power method.
    pub max_iters: usize,
    /// Treatment of dangling (zero out-degree) rows.
    pub dangling: DanglingPolicy,
    /// Power-method acceleration scheme (see
    /// [`Acceleration`]); the extrapolation
    /// methods the LMM paper cites as the centralized speed-up alternative.
    pub acceleration: Acceleration,
    /// Worker threads for the gather SpMV and `O(n)` vector passes
    /// (`0` = one per available core). Defaults to 1 (serial): inner
    /// solves — e.g. one site's DocRank inside a per-site fan-out — must
    /// stay serial, so parallelism is opt-in at the outermost level.
    /// Results are bit-identical for every value.
    pub threads: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tol: 1e-12,
            max_iters: 10_000,
            dangling: DanglingPolicy::Uniform,
            acceleration: Acceleration::None,
            threads: 1,
        }
    }
}

/// Result of a PageRank computation.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankResult {
    /// The rank vector (a probability distribution).
    pub ranking: Ranking,
    /// Power-method convergence statistics.
    pub report: ConvergenceReport,
}

/// Non-consuming builder for PageRank computations.
///
/// # Example
/// ```
/// use lmm_linalg::{CooMatrix, StochasticMatrix};
/// use lmm_rank::pagerank::PageRank;
///
/// # fn main() -> Result<(), lmm_rank::RankError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 1.0);
/// coo.push(1, 0, 1.0);
/// let m = StochasticMatrix::from_adjacency(coo.to_csr())?;
/// let result = PageRank::new().damping(0.9).tol(1e-12).run(&m)?;
/// assert!((result.ranking.score(0) - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageRank {
    config: PageRankConfig,
    personalization: Option<Vec<f64>>,
    initial: Option<Vec<f64>>,
}

impl PageRank {
    /// Creates a builder with default parameters (f = 0.85, uniform
    /// teleportation, tol = 1e-12).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder from an explicit config.
    #[must_use]
    pub fn from_config(config: PageRankConfig) -> Self {
        Self {
            config,
            personalization: None,
            initial: None,
        }
    }

    /// Sets the damping factor `f` (validated in [`PageRank::run`]).
    pub fn damping(&mut self, f: f64) -> &mut Self {
        self.config.damping = f;
        self
    }

    /// Sets the convergence tolerance.
    pub fn tol(&mut self, tol: f64) -> &mut Self {
        self.config.tol = tol;
        self
    }

    /// Sets the iteration budget.
    pub fn max_iters(&mut self, max_iters: usize) -> &mut Self {
        self.config.max_iters = max_iters;
        self
    }

    /// Sets the dangling-row policy.
    pub fn dangling(&mut self, policy: DanglingPolicy) -> &mut Self {
        self.config.dangling = policy;
        self
    }

    /// Sets the power-method acceleration scheme.
    pub fn acceleration(&mut self, acceleration: Acceleration) -> &mut Self {
        self.config.acceleration = acceleration;
        self
    }

    /// Sets the worker-thread count for the gather SpMV and vector passes
    /// (`0` = one per available core; default 1 = serial). The ranking is
    /// bit-identical for every value — threads only change wall time.
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.config.threads = threads;
        self
    }

    /// Sets the personalization (teleport) vector `v` in
    /// `M̂ = f·M + (1−f)·e·vᵀ`. Defaults to the uniform distribution, which
    /// recovers the paper's eq. (1).
    pub fn personalization(&mut self, v: Vec<f64>) -> &mut Self {
        self.personalization = Some(v);
        self
    }

    /// Sets the starting iterate (defaults to uniform). Used by BlockRank to
    /// warm-start the global iteration from the aggregated approximation.
    pub fn initial(&mut self, x0: Vec<f64>) -> &mut Self {
        self.initial = Some(x0);
        self
    }

    /// Snapshot of the scalar configuration.
    #[must_use]
    pub fn config(&self) -> &PageRankConfig {
        &self.config
    }

    /// Runs PageRank on a validated transition matrix.
    ///
    /// # Errors
    /// * [`RankError::InvalidDamping`] unless `0 < f < 1`;
    /// * [`RankError::InvalidPersonalization`] if `v` is not a distribution
    ///   of length `n`;
    /// * [`RankError::Empty`] for a 0-state chain;
    /// * [`RankError::Linalg`] if the power method fails to converge.
    pub fn run(&self, m: &StochasticMatrix) -> Result<PageRankResult> {
        let n = m.n();
        if n == 0 {
            return Err(RankError::Empty);
        }
        let f = self.config.damping;
        if !(f > 0.0 && f < 1.0) {
            return Err(RankError::InvalidDamping { value: f });
        }
        let v = match &self.personalization {
            Some(v) => {
                if v.len() != n {
                    return Err(RankError::InvalidPersonalization {
                        reason: "length differs from the number of states",
                    });
                }
                vec_ops::check_distribution(v, 1e-6).map_err(|_| {
                    RankError::InvalidPersonalization {
                        reason: "entries must be non-negative and sum to 1",
                    }
                })?;
                v.clone()
            }
            None => vec_ops::uniform(n),
        };
        let x0 = match &self.initial {
            Some(x0) => {
                if x0.len() != n {
                    return Err(RankError::InvalidPersonalization {
                        reason: "initial vector length differs from the number of states",
                    });
                }
                x0.clone()
            }
            None => vec_ops::uniform(n),
        };
        let pool = ThreadPool::shared(self.config.threads);
        let op = GoogleOperator {
            // Pull mode: pay the transpose once, gather every step.
            mt: StationaryOperator::new(m.matrix(), Arc::clone(&pool))?,
            m,
            damping: f,
            v: &v,
            policy: self.config.dangling,
            pool: Arc::clone(&pool),
        };
        let opts = PowerOptions {
            tol: self.config.tol,
            max_iters: self.config.max_iters,
            acceleration: self.config.acceleration,
            ..PowerOptions::default()
        };
        let (scores, report) = power_method_pool(&op, &x0, &opts, &pool)?;
        Ok(PageRankResult {
            ranking: Ranking::from_scores(scores)?,
            report,
        })
    }

    /// Convenience: row-normalizes a non-negative adjacency matrix (the
    /// paper's `M(G)`) and runs PageRank on it.
    ///
    /// # Errors
    /// See [`PageRank::run`]; additionally propagates adjacency validation
    /// errors from [`StochasticMatrix::from_adjacency`].
    pub fn run_adjacency(&self, adjacency: CsrMatrix) -> Result<PageRankResult> {
        let m = StochasticMatrix::from_adjacency(adjacency)?;
        self.run(&m)
    }
}

/// The factored Google-matrix step `y = f·(Mᵀx + dangling) + (1−f)·‖x‖₁·v`.
///
/// The `‖x‖₁` factor keeps the operator linear; under the power method's
/// per-step normalization it equals 1. The `Mᵀx` term is the parallel
/// pull-mode gather of [`StationaryOperator`] (bit-identical to the serial
/// scatter); the dangling redistribution reuses the exact arithmetic of
/// [`StochasticMatrix::rank_step_into`]; the final blend is an elementwise
/// parallel sweep. The step is therefore deterministic across thread
/// counts.
struct GoogleOperator<'a> {
    mt: StationaryOperator,
    m: &'a StochasticMatrix,
    damping: f64,
    v: &'a [f64],
    policy: DanglingPolicy,
    pool: Arc<ThreadPool>,
}

impl LinearOperator for GoogleOperator<'_> {
    fn dim(&self) -> usize {
        self.m.n()
    }

    fn apply_to(&self, x: &[f64], y: &mut [f64]) -> lmm_linalg::Result<()> {
        self.mt.apply_to(x, y)?;
        self.m.redistribute_dangling(x, self.v, self.policy, y)?;
        let sx = vec_ops::sum_par(&self.pool, x);
        let teleport = (1.0 - self.damping) * sx;
        let damping = self.damping;
        let v = self.v;
        self.pool
            .par_chunks_mut(y, vec_ops::PAR_CHUNK, |offset, chunk| {
                let len = chunk.len();
                for (yi, &vi) in chunk.iter_mut().zip(&v[offset..offset + len]) {
                    *yi = damping * *yi + teleport * vi;
                }
            });
        Ok(())
    }
}

/// Builds the explicit Google matrix `M̂ = f·M + (1−f)·e·vᵀ` densely, with
/// dangling rows replaced by the policy target first. Intended for tests and
/// the paper's small worked example — `O(n²)` memory.
///
/// # Errors
/// Same validation as [`PageRank::run`].
pub fn google_matrix_dense(
    m: &StochasticMatrix,
    damping: f64,
    personalization: Option<&[f64]>,
    policy: DanglingPolicy,
) -> Result<DenseMatrix> {
    let n = m.n();
    if n == 0 {
        return Err(RankError::Empty);
    }
    if !(damping > 0.0 && damping < 1.0) {
        return Err(RankError::InvalidDamping { value: damping });
    }
    let v = match personalization {
        Some(v) => v.to_vec(),
        None => vec_ops::uniform(n),
    };
    if v.len() != n {
        return Err(RankError::InvalidPersonalization {
            reason: "length differs from the number of states",
        });
    }
    let mut g = DenseMatrix::zeros(n, n)?;
    // Start from M with dangling rows patched.
    for (r, c, val) in m.matrix().iter() {
        g.set(r, c, val);
    }
    for &d in m.dangling() {
        let row = g.row_mut(d);
        match policy {
            DanglingPolicy::Uniform => row.fill(1.0 / n as f64),
            DanglingPolicy::Teleport => row.copy_from_slice(&v),
            DanglingPolicy::Renormalize => {}
        }
    }
    // Blend with the teleport rank-one term.
    #[allow(clippy::needless_range_loop)] // i and j index a 2-D matrix accessor
    for i in 0..n {
        for j in 0..n {
            let blended = damping * g.get(i, j) + (1.0 - damping) * v[j];
            g.set(i, j, blended);
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_linalg::CooMatrix;

    fn triangle() -> StochasticMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 1.0);
        coo.push(2, 0, 1.0);
        StochasticMatrix::from_adjacency(coo.to_csr()).unwrap()
    }

    fn with_dangling() -> StochasticMatrix {
        // 0 -> 1, 0 -> 2, 1 -> 0; 2 dangling.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(0, 2, 1.0);
        coo.push(1, 0, 1.0);
        StochasticMatrix::from_adjacency(coo.to_csr()).unwrap()
    }

    #[test]
    fn symmetric_cycle_gives_uniform() {
        let r = PageRank::new().run(&triangle()).unwrap();
        for &s in r.ranking.scores() {
            assert!((s - 1.0 / 3.0).abs() < 1e-10);
        }
        assert!(r.report.converged);
    }

    #[test]
    fn sums_to_one_with_dangling() {
        for policy in [
            DanglingPolicy::Uniform,
            DanglingPolicy::Teleport,
            DanglingPolicy::Renormalize,
        ] {
            let r = PageRank::new()
                .dangling(policy)
                .run(&with_dangling())
                .unwrap();
            let total: f64 = r.ranking.scores().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "policy {policy:?}");
        }
    }

    #[test]
    fn matches_explicit_google_matrix() {
        let m = with_dangling();
        let r = PageRank::new().run(&m).unwrap();
        let g = google_matrix_dense(&m, 0.85, None, DanglingPolicy::Uniform).unwrap();
        let (pi, _) =
            lmm_linalg::power::stationary_distribution(&g.to_csr(), &PowerOptions::default())
                .unwrap();
        assert!(vec_ops::l1_diff(r.ranking.scores(), &pi) < 1e-9);
    }

    #[test]
    fn personalization_shifts_mass() {
        let m = triangle();
        let mut pr = PageRank::new();
        pr.personalization(vec![1.0, 0.0, 0.0]);
        let r = pr.run(&m).unwrap();
        // All teleportation lands on page 0, which then feeds 1 then 2.
        assert!(r.ranking.score(0) > r.ranking.score(2));
    }

    #[test]
    fn damping_validated() {
        for bad in [0.0, 1.0, -0.2, 1.5, f64::NAN] {
            let err = PageRank::new().damping(bad).run(&triangle()).unwrap_err();
            assert!(matches!(err, RankError::InvalidDamping { .. }), "{bad}");
        }
    }

    #[test]
    fn personalization_validated() {
        let m = triangle();
        let mut pr = PageRank::new();
        pr.personalization(vec![0.5, 0.5]); // wrong length
        assert!(matches!(
            pr.run(&m),
            Err(RankError::InvalidPersonalization { .. })
        ));
        let mut pr = PageRank::new();
        pr.personalization(vec![0.5, 0.6, 0.2]); // not a distribution
        assert!(matches!(
            pr.run(&m),
            Err(RankError::InvalidPersonalization { .. })
        ));
    }

    #[test]
    fn higher_damping_concentrates_on_link_structure() {
        // Star pointing at 0: higher damping should rank 0 higher.
        let mut coo = CooMatrix::new(4, 4);
        for i in 1..4 {
            coo.push(i, 0, 1.0);
        }
        coo.push(0, 1, 1.0);
        let m = StochasticMatrix::from_adjacency(coo.to_csr()).unwrap();
        let low = PageRank::new().damping(0.5).run(&m).unwrap();
        let high = PageRank::new().damping(0.95).run(&m).unwrap();
        assert!(high.ranking.score(0) > low.ranking.score(0));
    }

    #[test]
    fn warm_start_converges_to_same_vector() {
        let m = with_dangling();
        let cold = PageRank::new().run(&m).unwrap();
        let mut pr = PageRank::new();
        pr.initial(vec![0.7, 0.2, 0.1]);
        let warm = pr.run(&m).unwrap();
        assert!(vec_ops::l1_diff(cold.ranking.scores(), warm.ranking.scores()) < 1e-9);
    }

    #[test]
    fn run_adjacency_convenience() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 7.0);
        let r = PageRank::new().run_adjacency(coo.to_csr()).unwrap();
        assert!((r.ranking.score(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_rejected() {
        let m = StochasticMatrix::from_adjacency(CooMatrix::new(0, 0).to_csr()).unwrap();
        assert!(matches!(PageRank::new().run(&m), Err(RankError::Empty)));
    }

    #[test]
    fn google_matrix_is_row_stochastic() {
        let g = google_matrix_dense(&with_dangling(), 0.85, None, DanglingPolicy::Uniform).unwrap();
        g.check_row_stochastic(1e-12).unwrap();
    }

    #[test]
    fn thread_count_is_bit_invisible() {
        for policy in [
            DanglingPolicy::Uniform,
            DanglingPolicy::Teleport,
            DanglingPolicy::Renormalize,
        ] {
            let m = with_dangling();
            let serial = PageRank::new().dangling(policy).run(&m).unwrap();
            for threads in [2usize, 4, 0] {
                let mut pr = PageRank::new();
                pr.dangling(policy).threads(threads);
                let parallel = pr.run(&m).unwrap();
                let same = serial
                    .ranking
                    .scores()
                    .iter()
                    .zip(parallel.ranking.scores())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "policy {policy:?}, {threads} threads");
                assert_eq!(serial.report.iterations, parallel.report.iterations);
            }
        }
    }
}
