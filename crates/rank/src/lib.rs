//! Link-analysis ranking algorithms over sparse transition matrices.
//!
//! This crate implements every ranking primitive the LMM paper builds on or
//! compares against:
//!
//! * [`pagerank`] — the classical PageRank with **maximal irreducibility**
//!   (eq. 1 of the paper): `M̂ = f·M + (1−f)/N·e·vᵀ`, with personalization
//!   and configurable dangling-row policies;
//! * [`gatekeeper`] — the **minimal irreducibility** construction the paper
//!   uses to obtain gatekeeper transition probabilities `u_Gj` (append a
//!   virtual state, power-iterate, drop it and renormalize) — provably
//!   equivalent to PageRank, which the test suite verifies numerically;
//! * [`hits`] — Kleinberg's HITS (hubs and authorities), the other classical
//!   algorithm the paper reviews;
//! * [`blockrank`] — the BlockRank baseline (Kamvar et al.) whose
//!   serialized block-weighting the paper contrasts with its parallel
//!   SiteLink counting;
//! * [`metrics`] — rank-comparison measures (Kendall τ, Spearman footrule,
//!   top-k overlap, spam share) used by the evaluation harness.
//!
//! # Example
//!
//! ```
//! use lmm_linalg::{CooMatrix, StochasticMatrix};
//! use lmm_rank::pagerank::PageRank;
//!
//! # fn main() -> Result<(), lmm_rank::RankError> {
//! // A 3-page web: 0 -> 1, 1 -> 2, 2 -> 0.
//! let mut coo = CooMatrix::new(3, 3);
//! coo.push(0, 1, 1.0);
//! coo.push(1, 2, 1.0);
//! coo.push(2, 0, 1.0);
//! let m = StochasticMatrix::from_adjacency(coo.to_csr())?;
//! let result = PageRank::new().damping(0.85).run(&m)?;
//! assert!((result.ranking.scores().iter().sum::<f64>() - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod blockrank;
pub mod error;
pub mod gatekeeper;
pub mod hits;
pub mod metrics;
pub mod pagerank;
pub mod ranking;

pub use error::{RankError, Result};
pub use gatekeeper::{gatekeeper_distribution, GatekeeperResult};
pub use pagerank::{PageRank, PageRankConfig, PageRankResult};
pub use ranking::Ranking;
