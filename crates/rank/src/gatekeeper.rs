//! The **minimal irreducibility** construction of Section 2.3.2: gatekeeper
//! sub-states.
//!
//! Given a phase's sub-state transition matrix `U` (n states), a mixing
//! parameter `α` and an initial distribution `v`, the paper appends a
//! virtual *gatekeeper* sub-state `G`:
//!
//! ```text
//!        Û = [ α·U      (1−α)·e ]
//!            [ vᵀ        0      ]
//! ```
//!
//! The stationary distribution of `Û` restricted to the original `n` states
//! and renormalized is the gatekeeper out-distribution `u_G·` — and it equals
//! PageRank of `U` with damping `α`, personalization `v`, and the
//! [`Teleport`](lmm_linalg::DanglingPolicy::Teleport) dangling policy
//! (Langville & Meyer's equivalence of minimal and maximal irreducibility).
//! [`gatekeeper_distribution`] implements the construction literally; the
//! tests verify the equivalence numerically.

use crate::error::{RankError, Result};
use crate::pagerank::PageRank;
use crate::ranking::Ranking;
use lmm_linalg::{
    power::stationary_distribution, vec_ops, ConvergenceReport, CooMatrix, CsrMatrix,
    DanglingPolicy, PowerOptions, StochasticMatrix,
};

/// Result of the minimal-irreducibility (gatekeeper) computation.
#[derive(Debug, Clone, PartialEq)]
pub struct GatekeeperResult {
    /// Stationary distribution over the original sub-states, gatekeeper
    /// removed and renormalized — the `u_Gj` values of eq. (3).
    pub distribution: Ranking,
    /// Stationary mass of the virtual gatekeeper state before removal.
    pub gatekeeper_mass: f64,
    /// Power-method convergence statistics on the augmented chain.
    pub report: ConvergenceReport,
}

/// Builds the augmented `(n+1) x (n+1)` matrix `Û` of Section 2.3.2.
///
/// Dangling rows of `U` transition to the gatekeeper with probability 1
/// (there is no link mass to scale by `α`).
///
/// # Errors
/// * [`RankError::InvalidDamping`] unless `0 < alpha < 1`;
/// * [`RankError::InvalidPersonalization`] if `v` is not a distribution of
///   length `n`.
pub fn augmented_matrix(u: &StochasticMatrix, alpha: f64, v: &[f64]) -> Result<CsrMatrix> {
    let n = u.n();
    if n == 0 {
        return Err(RankError::Empty);
    }
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(RankError::InvalidDamping { value: alpha });
    }
    if v.len() != n {
        return Err(RankError::InvalidPersonalization {
            reason: "length differs from the number of sub-states",
        });
    }
    vec_ops::check_distribution(v, 1e-6).map_err(|_| RankError::InvalidPersonalization {
        reason: "entries must be non-negative and sum to 1",
    })?;

    let mut coo = CooMatrix::with_capacity(n + 1, n + 1, u.matrix().nnz() + 2 * n + 1);
    let mut is_dangling = vec![false; n];
    for &d in u.dangling() {
        is_dangling[d] = true;
    }
    for (r, c, val) in u.matrix().iter() {
        coo.push(r, c, alpha * val);
    }
    for (r, &dangling) in is_dangling.iter().enumerate() {
        if dangling {
            coo.push(r, n, 1.0);
        } else {
            coo.push(r, n, 1.0 - alpha);
        }
    }
    for (j, &vj) in v.iter().enumerate() {
        if vj > 0.0 {
            coo.push(n, j, vj);
        }
    }
    Ok(coo.to_csr())
}

/// Computes the gatekeeper out-distribution `u_G·` of a phase: stationary
/// vector of the augmented chain with the gatekeeper entry dropped and the
/// rest renormalized (Section 2.3.2).
///
/// `v` defaults to uniform when `None`.
///
/// # Errors
/// See [`augmented_matrix`]; additionally [`RankError::Linalg`] if the power
/// method on the augmented chain fails to converge within `opts`.
///
/// # Example
/// ```
/// use lmm_linalg::{DenseMatrix, PowerOptions, StochasticMatrix};
/// use lmm_rank::gatekeeper::gatekeeper_distribution;
///
/// # fn main() -> Result<(), lmm_rank::RankError> {
/// // U2 from the paper's worked example.
/// let u = DenseMatrix::from_rows(&[
///     vec![0.2, 0.1, 0.7],
///     vec![0.1, 0.8, 0.1],
///     vec![0.05, 0.05, 0.9],
/// ])?;
/// let u = StochasticMatrix::new(u.to_csr())?;
/// let g = gatekeeper_distribution(&u, 0.85, None, &PowerOptions::default())?;
/// // The paper's printed pi_G^2 = (0.1191, 0.2691, 0.6117).
/// assert!((g.distribution.score(2) - 0.6117).abs() < 5e-4);
/// # Ok(())
/// # }
/// ```
pub fn gatekeeper_distribution(
    u: &StochasticMatrix,
    alpha: f64,
    v: Option<&[f64]>,
    opts: &PowerOptions,
) -> Result<GatekeeperResult> {
    let n = u.n();
    let uniform;
    let v = match v {
        Some(v) => v,
        None => {
            uniform = vec_ops::uniform(n.max(1));
            &uniform
        }
    };
    if u.dangling().len() == n {
        // Degenerate phase with no internal links at all: the augmented
        // chain is bipartite (every state -> gatekeeper -> v), so the power
        // method oscillates with period 2. Its Cesàro limit restricted to
        // the original states is exactly `v` — which also matches the
        // maximal-irreducibility PageRank on an edgeless graph. Validate the
        // parameters through the regular path, then return `v` directly.
        let _ = augmented_matrix(u, alpha, v)?;
        return Ok(GatekeeperResult {
            distribution: Ranking::from_scores(v.to_vec())?,
            gatekeeper_mass: 0.5,
            report: lmm_linalg::ConvergenceReport {
                iterations: 0,
                residual: 0.0,
                converged: true,
            },
        });
    }
    let augmented = augmented_matrix(u, alpha, v)?;
    let (full, report) = stationary_distribution(&augmented, opts)?;
    let gatekeeper_mass = full[n];
    let mut rest = full[..n].to_vec();
    vec_ops::normalize_l1(&mut rest)?;
    Ok(GatekeeperResult {
        distribution: Ranking::from_scores(rest)?,
        gatekeeper_mass,
        report,
    })
}

/// Computes the same distribution through the maximal-irreducibility route
/// (PageRank with damping `alpha`, personalization `v`, teleport dangling
/// policy). Exposed so callers and tests can check the equivalence the
/// paper relies on.
///
/// # Errors
/// See [`PageRank::run`].
pub fn gatekeeper_via_pagerank(
    u: &StochasticMatrix,
    alpha: f64,
    v: Option<&[f64]>,
    tol: f64,
) -> Result<Ranking> {
    let mut pr = PageRank::new();
    pr.damping(alpha)
        .tol(tol)
        .dangling(DanglingPolicy::Teleport);
    if let Some(v) = v {
        pr.personalization(v.to_vec());
    }
    Ok(pr.run(u)?.ranking)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_linalg::DenseMatrix;

    fn u2() -> StochasticMatrix {
        let d = DenseMatrix::from_rows(&[
            vec![0.2, 0.1, 0.7],
            vec![0.1, 0.8, 0.1],
            vec![0.05, 0.05, 0.9],
        ])
        .unwrap();
        StochasticMatrix::new(d.to_csr()).unwrap()
    }

    fn with_dangling() -> StochasticMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 0.5);
        coo.push(1, 2, 0.5);
        StochasticMatrix::new(coo.to_csr()).unwrap()
    }

    #[test]
    fn augmented_matrix_is_stochastic() {
        let a = augmented_matrix(&u2(), 0.85, &vec_ops::uniform(3)).unwrap();
        for (i, s) in a.row_sums().iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-12, "row {i} sums to {s}");
        }
        assert_eq!(a.nrows(), 4);
    }

    #[test]
    fn augmented_matrix_dangling_rows_go_to_gatekeeper() {
        let a = augmented_matrix(&with_dangling(), 0.85, &vec_ops::uniform(3)).unwrap();
        // Row 2 is dangling: all its mass must go to the gatekeeper (col 3).
        assert_eq!(a.get(2, 3), 1.0);
        assert_eq!(a.row_nnz(2), 1);
        // Non-dangling rows keep (1 - alpha) for the gatekeeper.
        assert!((a.get(0, 3) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn matches_paper_pi_g2() {
        let g = gatekeeper_distribution(&u2(), 0.85, None, &PowerOptions::default()).unwrap();
        let expected = [0.1191, 0.2691, 0.6117];
        for (i, &e) in expected.iter().enumerate() {
            assert!(
                (g.distribution.score(i) - e).abs() < 5e-4,
                "pi_G^2[{i}] = {} != {e}",
                g.distribution.score(i)
            );
        }
    }

    #[test]
    fn equivalent_to_pagerank_no_dangling() {
        let u = u2();
        let g = gatekeeper_distribution(&u, 0.85, None, &PowerOptions::default()).unwrap();
        let pr = gatekeeper_via_pagerank(&u, 0.85, None, 1e-13).unwrap();
        assert!(vec_ops::l1_diff(g.distribution.scores(), pr.scores()) < 1e-8);
    }

    #[test]
    fn equivalent_to_pagerank_with_dangling() {
        let u = with_dangling();
        let g = gatekeeper_distribution(&u, 0.85, None, &PowerOptions::default()).unwrap();
        let pr = gatekeeper_via_pagerank(&u, 0.85, None, 1e-13).unwrap();
        assert!(vec_ops::l1_diff(g.distribution.scores(), pr.scores()) < 1e-8);
    }

    #[test]
    fn equivalent_to_pagerank_personalized() {
        let u = u2();
        let v = [0.6, 0.3, 0.1];
        let g = gatekeeper_distribution(&u, 0.7, Some(&v), &PowerOptions::default()).unwrap();
        let pr = gatekeeper_via_pagerank(&u, 0.7, Some(&v), 1e-13).unwrap();
        assert!(vec_ops::l1_diff(g.distribution.scores(), pr.scores()) < 1e-8);
    }

    #[test]
    fn gatekeeper_mass_matches_theory_without_dangling() {
        // Without dangling rows the gatekeeper mass is (1-a)/(2-a).
        let alpha = 0.85;
        let g = gatekeeper_distribution(&u2(), alpha, None, &PowerOptions::default()).unwrap();
        let expected = (1.0 - alpha) / (2.0 - alpha);
        assert!((g.gatekeeper_mass - expected).abs() < 1e-9);
    }

    #[test]
    fn alpha_validated() {
        for bad in [0.0, 1.0, -1.0, 2.0] {
            assert!(matches!(
                gatekeeper_distribution(&u2(), bad, None, &PowerOptions::default()),
                Err(RankError::InvalidDamping { .. })
            ));
        }
    }

    #[test]
    fn v_validated() {
        assert!(matches!(
            gatekeeper_distribution(&u2(), 0.85, Some(&[0.5, 0.5]), &PowerOptions::default()),
            Err(RankError::InvalidPersonalization { .. })
        ));
        assert!(matches!(
            gatekeeper_distribution(
                &u2(),
                0.85,
                Some(&[0.5, 0.6, 0.2]),
                &PowerOptions::default()
            ),
            Err(RankError::InvalidPersonalization { .. })
        ));
    }

    #[test]
    fn edgeless_phase_returns_teleport_vector() {
        // All-dangling phase: the augmented chain is bipartite; the
        // gatekeeper distribution degenerates to v (matching PageRank on an
        // edgeless graph).
        let edgeless = StochasticMatrix::from_adjacency(CooMatrix::new(3, 3).to_csr()).unwrap();
        let g = gatekeeper_distribution(&edgeless, 0.85, None, &PowerOptions::default()).unwrap();
        assert_eq!(g.distribution.scores(), &[1.0 / 3.0; 3]);
        let v = [0.5, 0.3, 0.2];
        let g =
            gatekeeper_distribution(&edgeless, 0.85, Some(&v), &PowerOptions::default()).unwrap();
        assert_eq!(g.distribution.scores(), &v);
        let pr = gatekeeper_via_pagerank(&edgeless, 0.85, Some(&v), 1e-13).unwrap();
        assert!(vec_ops::l1_diff(g.distribution.scores(), pr.scores()) < 1e-9);
    }

    #[test]
    fn distribution_sums_to_one() {
        let g =
            gatekeeper_distribution(&with_dangling(), 0.6, None, &PowerOptions::default()).unwrap();
        let s: f64 = g.distribution.scores().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }
}
