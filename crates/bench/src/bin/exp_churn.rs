//! Experiment PR5: live graph mutation under a stream of structural deltas
//! — growth **and** removal — measured end to end through the engine *and*
//! the sharded serving tier.
//!
//! Drives the incremental engine backend through a churn stream on a
//! synthetic 100k-page campus web: every step builds a mixed
//! [`GraphDelta`] (intra-site rewires, cross links, page growth, whole new
//! sites, page removals, whole-site removals), applies it through
//! `RankEngine::apply_delta`, publishes the snapshot to a
//! [`ShardedServer`], and compares against a from-scratch layered run on
//! the mutated graph:
//!
//! * **correctness** — the incremental ranking must match the scratch
//!   ranking within a bounded L1 drift (warm starts trade bit-equality for
//!   convergence speed; the bound is far below the power tolerance's
//!   effect on ordering);
//! * **mass conservation** — after every removal the redistributed rank
//!   must still sum to 1 within 1e-9 (the dangling-style redistribution
//!   never leaks mass into tombstoned slots);
//! * **locality** — `UpdateStats` (via telemetry) must show that exactly
//!   the changed/grown/shrunk/added sites were recomputed and everything
//!   else was reused — the paper's Section 1.2 "localized change" claim
//!   measured;
//! * **shard accuracy** — every publish must rebuild exactly the shards
//!   the snapshot's staleness names (refreshing or re-pinning the rest),
//!   and tombstoned ids must answer the typed error;
//! * **speed** — incremental wall time vs scratch wall time per step.
//!
//! Writes `BENCH_pr5.json` (`--smoke` writes `BENCH_pr5_smoke.json` for
//! CI so the committed measurements are never clobbered).
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_churn`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use lmm_bench::{section, timed};
use lmm_core::siterank::SiteLayerMethod;
use lmm_engine::{BackendSpec, MemorySink, RankEngine, Staleness};
use lmm_graph::delta::{AppliedDelta, GraphDelta};
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::sharding::ShardMap;
use lmm_graph::{DocGraph, SiteId};
use lmm_linalg::vec_ops;
use lmm_serve::{ServeConfig, ServeError, ShardedServer};

const OUT_PATH: &str = "BENCH_pr5.json";
const SMOKE_OUT_PATH: &str = "BENCH_pr5_smoke.json";
const N_SHARDS: usize = 8;

/// Warm-start drift bound: the power tolerance is 1e-10, so both sides sit
/// within ~1e-9 of the fixed point; 1e-6 leaves three orders of headroom
/// while still catching any real misalignment (which shows up at 1e-2+).
const DRIFT_BOUND: f64 = 1e-6;

struct StepRecord {
    step: usize,
    kind: String,
    docs: usize,
    live_docs: usize,
    sites: usize,
    live_sites: usize,
    apply: Duration,
    incremental: Duration,
    scratch: Duration,
    sites_recomputed: usize,
    sites_reused: usize,
    sites_removed: usize,
    shards_rebuilt: usize,
    shards_refreshed: usize,
    l1_drift: f64,
    mass_error: f64,
}

/// The `k`-th live site (cyclic) with at least `min_docs` live documents.
fn live_site_with(graph: &DocGraph, k: usize, min_docs: usize) -> SiteId {
    let n = graph.n_sites();
    (0..n)
        .map(|i| SiteId((k + i) % n))
        .find(|&s| graph.is_live_site(s) && graph.site_size(s) >= min_docs)
        .expect("churn never drains every site")
}

/// Builds the churn stream's delta for one step — deterministic, mixed,
/// and increasingly structural: every step rewires one site internally;
/// every 2nd grows a site; every 3rd adds a cross link; every 4th appends
/// a whole new site; every 5th removes a page (**shrink**); every 6th
/// tombstones a whole site (**drop-site**).
fn churn_delta(graph: &DocGraph, step: usize) -> (GraphDelta, String) {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    // Composite label: every mutation category in this step, in order.
    let mut kinds = vec!["rewire"];

    // Sites this step grows or shrinks: the drop-site pick below must not
    // collide with them (apply rejects removing a site it also edits).
    let mut touched: Vec<SiteId> = Vec::new();

    // Intra-site rewire in a rotating live site with at least 3 documents.
    let site = live_site_with(graph, step * 7 + 3, 3);
    touched.push(site);
    let docs = graph.docs_of_site(site);
    delta.remove_link(docs[0], docs[1]).expect("in range");
    delta.add_link(docs[1], docs[2]).expect("in range");
    delta.add_link(docs[2], docs[0]).expect("in range");

    if step.is_multiple_of(2) {
        kinds.push("grow");
        let target = live_site_with(graph, step * 5 + 1, 1);
        touched.push(target);
        let root = graph.docs_of_site(target)[0];
        for i in 0..2 {
            let p = delta
                .add_page(target, &format!("http://churn-grow-{step}-{i}.page/"))
                .expect("existing site");
            delta.add_link(root, p).expect("in range");
            delta.add_link(p, root).expect("in range");
        }
    }
    if step.is_multiple_of(3) {
        kinds.push("cross");
        let a = graph.docs_of_site(live_site_with(graph, step * 11 + 2, 1))[0];
        let b = graph.docs_of_site(live_site_with(graph, step * 13 + 5, 1))[0];
        delta.add_link(a, b).expect("in range");
    }
    if step % 4 == 3 {
        kinds.push("new-site");
        let s = delta.add_site(&format!("churn-{step}.example"));
        let mut pages = Vec::new();
        for i in 0..4 {
            pages.push(
                delta
                    .add_page(s, &format!("http://churn-{step}.example/{i}"))
                    .expect("new site"),
            );
        }
        for w in pages.windows(2) {
            delta.add_link(w[0], w[1]).expect("in range");
        }
        delta.add_link(pages[3], pages[0]).expect("in range");
        let anchor = graph.docs_of_site(live_site_with(graph, step, 1))[0];
        delta.add_link(anchor, pages[0]).expect("in range");
        delta.add_link(pages[0], anchor).expect("in range");
    }
    if step % 5 == 4 {
        kinds.push("shrink");
        // Remove a non-root page from a comfortably sized live site.
        let target = live_site_with(graph, step * 17 + 7, 4);
        touched.push(target);
        let victim = graph.docs_of_site(target)[1];
        delta.remove_page(victim).expect("live page");
    }
    if step % 6 == 5 {
        kinds.push("drop-site");
        // Tombstone a rotating live site this step did not otherwise edit.
        let doomed = (0..n_sites)
            .map(|i| SiteId((step * 19 + 11 + i) % n_sites))
            .find(|&s| graph.is_live_site(s) && !touched.contains(&s))
            .expect("more than one live site");
        delta.remove_site(doomed).expect("live site");
    }
    (delta, kinds.join("+"))
}

fn expected_recomputed(mutated: &DocGraph, base_sites: usize, applied: &AppliedDelta) -> usize {
    let live_added = (base_sites..mutated.n_sites())
        .filter(|&s| mutated.is_live_site(SiteId(s)))
        .count();
    applied.changed_sites.len()
        + applied.grown_sites.len()
        + applied.shrunk_sites.len()
        + live_added
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let steps = if smoke { 7 } else { 14 };

    let mut cfg = CampusWebConfig::paper_scale();
    cfg.spam_farms.clear();
    cfg.seed = 11;
    if smoke {
        cfg.total_docs = 2_000;
        cfg.n_sites = 40;
    } else {
        cfg.total_docs = 100_000;
        cfg.n_sites = 400;
    }
    let base = cfg.generate()?;

    section(&format!(
        "Live graph mutation: {} docs, {} sites, {} links, {} churn steps (incl. removal)",
        base.n_docs(),
        base.n_sites(),
        base.n_links(),
        steps
    ));

    let sink = Arc::new(MemorySink::new());
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .damping(0.85)
        .tolerance(1e-10)
        .telemetry(sink.clone())
        .build()?;
    let (_, warmup) = timed(|| engine.rank(&base).cloned());
    // The serving map is fixed at server start; expected shard counts below
    // must be computed against this same map.
    let map = ShardMap::balanced(&base, N_SHARDS)?;
    let server = ShardedServer::start(map.clone(), &engine.snapshot()?, ServeConfig::default())?;
    println!(
        "{:>5} {:>28} {:>10} {:>10} {:>9} {:>12} {:>7} {:>10}",
        "step", "kind", "incr", "scratch", "speedup", "recomputed", "shards", "l1 drift"
    );
    println!("base rank (cold): {warmup:.2?}; serving {N_SHARDS} shards");

    let mut current = base;
    let mut records: Vec<StepRecord> = Vec::new();
    for step in 0..steps {
        let (delta, kind) = churn_delta(&current, step);
        let base_sites = current.n_sites();
        // Timed separately: the graph-only patch cost, which the
        // copy-on-write URL/kind/membership columns keep O(delta + sites)
        // for append-only deltas instead of O(n_docs) clones per apply.
        let (applied_pair, apply_wall) = timed(|| current.apply(&delta));
        let (mutated, applied) = applied_pair?;

        let before = sink.len();
        let (outcome, incr_wall) = timed(|| engine.apply_delta(&delta).cloned());
        let outcome = outcome?;

        // From-scratch reference on the mutated (tombstoned) graph — the
        // layered backend handles tombstones natively; a fresh engine so
        // the serving cache cannot shortcut it.
        let mut scratch_engine = RankEngine::builder()
            .backend(BackendSpec::Layered {
                site_layer: SiteLayerMethod::PageRank,
            })
            .damping(0.85)
            .tolerance(1e-10)
            .build()?;
        let (scratch, scratch_wall) = timed(|| scratch_engine.rank(&mutated).cloned());
        let scratch = scratch?;

        // Correctness: bounded drift at every step.
        let l1 = vec_ops::l1_diff(outcome.ranking.scores(), scratch.ranking.scores());
        assert!(
            l1 < DRIFT_BOUND,
            "step {step}: incremental drifted from scratch by {l1:.3e}"
        );
        // Mass conservation: removal redistributes, never leaks.
        let mass: f64 = outcome.ranking.scores().iter().sum();
        let mass_error = (mass - 1.0).abs();
        assert!(
            mass_error < 1e-9,
            "step {step}: rank mass {mass} is not conserved"
        );

        // Locality: telemetry UpdateStats match the induced delta exactly.
        let runs = sink.runs();
        assert_eq!(runs.len(), before + 1, "apply_delta must report one run");
        let telemetry = &runs[before];
        let expected = expected_recomputed(&mutated, base_sites, &applied);
        assert_eq!(
            telemetry.sites_recomputed, expected,
            "step {step}: recomputed {} sites, induced delta demands {expected}",
            telemetry.sites_recomputed
        );
        assert_eq!(
            telemetry.sites_reused,
            mutated.n_live_sites() - expected,
            "step {step}: reuse accounting is off"
        );
        assert_eq!(
            telemetry.sites_removed,
            applied.removed_sites.len(),
            "step {step}: removal accounting is off"
        );
        assert!(
            telemetry.sites_recomputed < mutated.n_live_sites(),
            "step {step}: churn must never degenerate into a full recompute"
        );

        // Shard accuracy: the publish must rebuild exactly the shards the
        // staleness names and refresh/re-pin the rest.
        let snapshot = engine.snapshot()?;
        let report = server.publish(&snapshot)?;
        let (expected_rebuilt, expected_refreshed) = match snapshot.staleness() {
            Staleness::Full => (N_SHARDS, 0),
            Staleness::Sites(sites) => (map.shards_of_sites(sites.iter().copied()).len(), 0),
            Staleness::Resized {
                sites,
                removed_sites,
            } => {
                let rebuilt = map
                    .shards_of_sites(sites.iter().chain(removed_sites).copied())
                    .len();
                (rebuilt, N_SHARDS - rebuilt)
            }
        };
        assert_eq!(
            (report.shards_rebuilt, report.shards_refreshed),
            (expected_rebuilt, expected_refreshed),
            "step {step}: publish did not match the staleness set"
        );
        // Tombstoned ids answer the typed error, never stale scores.
        if let Some(&dead) = applied.removed_docs.first() {
            assert!(
                matches!(server.score(dead), Err(ServeError::TombstonedDoc { .. })),
                "step {step}: tombstoned doc served"
            );
        }
        // And the serve tier agrees with the engine cache bitwise.
        let (epoch, top) = server.top_k(10)?;
        assert_eq!(epoch, snapshot.epoch());
        assert_eq!(top, engine.top_k(10)?, "step {step}: serve/engine split");

        let speedup = scratch_wall.as_secs_f64() / incr_wall.as_secs_f64().max(1e-9);
        println!(
            "{:>5} {:>28} {:>10.2?} {:>10.2?} {:>8.1}x {:>7}/{:<4} {:>3}+{:<3} {:>10.1e}",
            step,
            kind,
            incr_wall,
            scratch_wall,
            speedup,
            telemetry.sites_recomputed,
            mutated.n_live_sites(),
            report.shards_rebuilt,
            report.shards_refreshed,
            l1
        );
        records.push(StepRecord {
            step,
            kind,
            docs: mutated.n_docs(),
            live_docs: mutated.n_live_docs(),
            sites: mutated.n_sites(),
            live_sites: mutated.n_live_sites(),
            apply: apply_wall,
            incremental: incr_wall,
            scratch: scratch_wall,
            sites_recomputed: telemetry.sites_recomputed,
            sites_reused: telemetry.sites_reused,
            sites_removed: telemetry.sites_removed,
            shards_rebuilt: report.shards_rebuilt,
            shards_refreshed: report.shards_refreshed,
            l1_drift: l1,
            mass_error,
        });
        current = mutated;
    }

    let stats = server.stats();
    let json = render_json(&current, smoke, &records, stats.doc_skew());
    let out_path = if smoke { SMOKE_OUT_PATH } else { OUT_PATH };
    std::fs::write(out_path, json)?;
    let total_incr: Duration = records.iter().map(|r| r.incremental).sum();
    let total_scratch: Duration = records.iter().map(|r| r.scratch).sum();
    println!("\nwrote {out_path}");
    println!(
        "totals: incremental {total_incr:.2?} vs scratch {total_scratch:.2?} ({:.1}x); \
         every step matched scratch within {DRIFT_BOUND:.0e} L1, conserved mass to 1e-9, \
         and rebuilt exactly the stale shards (final doc skew {:.2})",
        total_scratch.as_secs_f64() / total_incr.as_secs_f64().max(1e-9),
        stats.doc_skew()
    );
    Ok(())
}

/// Hand-rolled JSON (the workspace is offline — no serde): one record per
/// churn step plus the final graph shape.
fn render_json(
    final_graph: &DocGraph,
    smoke: bool,
    records: &[StepRecord],
    doc_skew: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"exp_churn\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"final_doc_slots\": {},", final_graph.n_docs());
    let _ = writeln!(out, "  \"final_live_docs\": {},", final_graph.n_live_docs());
    let _ = writeln!(out, "  \"final_site_slots\": {},", final_graph.n_sites());
    let _ = writeln!(
        out,
        "  \"final_live_sites\": {},",
        final_graph.n_live_sites()
    );
    let _ = writeln!(out, "  \"final_links\": {},", final_graph.n_links());
    let _ = writeln!(out, "  \"n_shards\": {N_SHARDS},");
    let _ = writeln!(out, "  \"final_doc_skew\": {doc_skew:.4},");
    let _ = writeln!(out, "  \"drift_bound\": {DRIFT_BOUND:e},");
    out.push_str("  \"steps\": [\n");
    for (i, r) in records.iter().enumerate() {
        let speedup = r.scratch.as_secs_f64() / r.incremental.as_secs_f64().max(1e-9);
        let _ = write!(
            out,
            "    {{\"step\": {}, \"kind\": \"{}\", \"docs\": {}, \"live_docs\": {}, \
             \"sites\": {}, \"live_sites\": {}, \
             \"apply_ms\": {:.3}, \
             \"incremental_ms\": {:.3}, \"scratch_ms\": {:.3}, \"speedup\": {:.2}, \
             \"sites_recomputed\": {}, \"sites_reused\": {}, \"sites_removed\": {}, \
             \"shards_rebuilt\": {}, \"shards_refreshed\": {}, \
             \"l1_drift\": {:.3e}, \"mass_error\": {:.3e}}}",
            r.step,
            r.kind,
            r.docs,
            r.live_docs,
            r.sites,
            r.live_sites,
            r.apply.as_secs_f64() * 1e3,
            r.incremental.as_secs_f64() * 1e3,
            r.scratch.as_secs_f64() * 1e3,
            speedup,
            r.sites_recomputed,
            r.sites_reused,
            r.sites_removed,
            r.shards_rebuilt,
            r.shards_refreshed,
            r.l1_drift,
            r.mass_error
        );
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
