//! Experiment PR3: live graph mutation under a stream of structural deltas.
//!
//! Drives the incremental engine backend through a churn stream on a
//! synthetic 100k-page campus web: every step builds a mixed
//! [`GraphDelta`] (intra-site rewires, cross links, page growth, whole new
//! sites), applies it through `RankEngine::apply_delta`, and compares
//! against a from-scratch layered run on the mutated graph:
//!
//! * **correctness** — the incremental ranking must match the scratch
//!   ranking within a bounded L1 drift (warm starts trade bit-equality for
//!   convergence speed; the bound is far below the power tolerance's
//!   effect on ordering);
//! * **locality** — `UpdateStats` (via telemetry) must show that exactly
//!   the changed/grown/added sites were recomputed and everything else was
//!   reused — the paper's Section 1.2 "localized change" claim measured;
//! * **speed** — incremental wall time vs scratch wall time per step.
//!
//! Writes `BENCH_pr3.json` (`--smoke` writes `BENCH_pr3_smoke.json` for
//! CI so the committed measurements are never clobbered).
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_churn`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use lmm_bench::{section, timed};
use lmm_core::siterank::SiteLayerMethod;
use lmm_engine::{BackendSpec, MemorySink, RankEngine};
use lmm_graph::delta::{AppliedDelta, GraphDelta};
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::{DocGraph, SiteId};
use lmm_linalg::vec_ops;

const OUT_PATH: &str = "BENCH_pr3.json";
const SMOKE_OUT_PATH: &str = "BENCH_pr3_smoke.json";

/// Warm-start drift bound: the power tolerance is 1e-10, so both sides sit
/// within ~1e-9 of the fixed point; 1e-6 leaves three orders of headroom
/// while still catching any real misalignment (which shows up at 1e-2+).
const DRIFT_BOUND: f64 = 1e-6;

struct StepRecord {
    step: usize,
    kind: String,
    docs: usize,
    sites: usize,
    incremental: Duration,
    scratch: Duration,
    sites_recomputed: usize,
    sites_reused: usize,
    l1_drift: f64,
}

/// Builds the churn stream's delta for one step — deterministic, mixed,
/// and increasingly structural: every step rewires one site internally;
/// every 2nd grows a site; every 3rd adds a cross link; every 4th appends
/// a whole new site.
fn churn_delta(graph: &DocGraph, step: usize) -> (GraphDelta, String) {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    // Composite label: every mutation category in this step, in order.
    let mut kinds = vec!["rewire"];

    // Intra-site rewire in a rotating site with at least 3 documents.
    let mut site = (step * 7 + 3) % n_sites;
    while graph.site_size(SiteId(site)) < 3 {
        site = (site + 1) % n_sites;
    }
    let docs = graph.docs_of_site(SiteId(site));
    delta.remove_link(docs[0], docs[1]).expect("in range");
    delta.add_link(docs[1], docs[2]).expect("in range");
    delta.add_link(docs[2], docs[0]).expect("in range");

    if step.is_multiple_of(2) {
        kinds.push("grow");
        let target = SiteId((step * 5 + 1) % n_sites);
        let root = graph.docs_of_site(target)[0];
        for i in 0..2 {
            let p = delta
                .add_page(target, &format!("http://churn-grow-{step}-{i}.page/"))
                .expect("existing site");
            delta.add_link(root, p).expect("in range");
            delta.add_link(p, root).expect("in range");
        }
    }
    if step.is_multiple_of(3) {
        kinds.push("cross");
        let a = graph.docs_of_site(SiteId((step * 11 + 2) % n_sites))[0];
        let b = graph.docs_of_site(SiteId((step * 13 + 5) % n_sites))[0];
        delta.add_link(a, b).expect("in range");
    }
    if step % 4 == 3 {
        kinds.push("new-site");
        let s = delta.add_site(&format!("churn-{step}.example"));
        let mut pages = Vec::new();
        for i in 0..4 {
            pages.push(
                delta
                    .add_page(s, &format!("http://churn-{step}.example/{i}"))
                    .expect("new site"),
            );
        }
        for w in pages.windows(2) {
            delta.add_link(w[0], w[1]).expect("in range");
        }
        delta.add_link(pages[3], pages[0]).expect("in range");
        let anchor = graph.docs_of_site(SiteId(step % n_sites))[0];
        delta.add_link(anchor, pages[0]).expect("in range");
        delta.add_link(pages[0], anchor).expect("in range");
    }
    (delta, kinds.join("+"))
}

fn expected_recomputed(applied: &AppliedDelta) -> usize {
    applied.changed_sites.len() + applied.grown_sites.len() + applied.added_sites
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let steps = if smoke { 5 } else { 12 };

    let mut cfg = CampusWebConfig::paper_scale();
    cfg.spam_farms.clear();
    cfg.seed = 11;
    if smoke {
        cfg.total_docs = 2_000;
        cfg.n_sites = 40;
    } else {
        cfg.total_docs = 100_000;
        cfg.n_sites = 400;
    }
    let base = cfg.generate()?;

    section(&format!(
        "Live graph mutation: {} docs, {} sites, {} links, {} churn steps",
        base.n_docs(),
        base.n_sites(),
        base.n_links(),
        steps
    ));

    let sink = Arc::new(MemorySink::new());
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .damping(0.85)
        .tolerance(1e-10)
        .telemetry(sink.clone())
        .build()?;
    let (_, warmup) = timed(|| engine.rank(&base).cloned());
    println!(
        "{:>5} {:>22} {:>10} {:>10} {:>9} {:>12} {:>10}",
        "step", "kind", "incr", "scratch", "speedup", "recomputed", "l1 drift"
    );
    println!("base rank (cold): {warmup:.2?}");

    let mut current = base;
    let mut records: Vec<StepRecord> = Vec::new();
    for step in 0..steps {
        let (delta, kind) = churn_delta(&current, step);
        let (mutated, applied) = current.apply(&delta)?;

        let before = sink.len();
        let (outcome, incr_wall) = timed(|| engine.apply_delta(&delta).cloned());
        let outcome = outcome?;

        // From-scratch reference on the mutated graph (fresh engine so the
        // serving cache cannot shortcut it).
        let mut scratch_engine = RankEngine::builder()
            .backend(BackendSpec::Layered {
                site_layer: SiteLayerMethod::PageRank,
            })
            .damping(0.85)
            .tolerance(1e-10)
            .build()?;
        let (scratch, scratch_wall) = timed(|| scratch_engine.rank(&mutated).cloned());
        let scratch = scratch?;

        // Correctness: bounded drift at every step.
        let l1 = vec_ops::l1_diff(outcome.ranking.scores(), scratch.ranking.scores());
        assert!(
            l1 < DRIFT_BOUND,
            "step {step}: incremental drifted from scratch by {l1:.3e}"
        );

        // Locality: telemetry UpdateStats match the induced delta exactly.
        let runs = sink.runs();
        assert_eq!(runs.len(), before + 1, "apply_delta must report one run");
        let telemetry = &runs[before];
        let expected = expected_recomputed(&applied);
        assert_eq!(
            telemetry.sites_recomputed, expected,
            "step {step}: recomputed {} sites, induced delta demands {expected}",
            telemetry.sites_recomputed
        );
        assert_eq!(
            telemetry.sites_reused,
            mutated.n_sites() - expected,
            "step {step}: reuse accounting is off"
        );
        assert!(
            telemetry.sites_recomputed < mutated.n_sites(),
            "step {step}: churn must never degenerate into a full recompute"
        );

        let speedup = scratch_wall.as_secs_f64() / incr_wall.as_secs_f64().max(1e-9);
        println!(
            "{:>5} {:>22} {:>10.2?} {:>10.2?} {:>8.1}x {:>7}/{:<4} {:>10.1e}",
            step,
            kind,
            incr_wall,
            scratch_wall,
            speedup,
            telemetry.sites_recomputed,
            mutated.n_sites(),
            l1
        );
        records.push(StepRecord {
            step,
            kind,
            docs: mutated.n_docs(),
            sites: mutated.n_sites(),
            incremental: incr_wall,
            scratch: scratch_wall,
            sites_recomputed: telemetry.sites_recomputed,
            sites_reused: telemetry.sites_reused,
            l1_drift: l1,
        });
        current = mutated;
    }

    let json = render_json(&current, smoke, &records);
    let out_path = if smoke { SMOKE_OUT_PATH } else { OUT_PATH };
    std::fs::write(out_path, json)?;
    let total_incr: Duration = records.iter().map(|r| r.incremental).sum();
    let total_scratch: Duration = records.iter().map(|r| r.scratch).sum();
    println!("\nwrote {out_path}");
    println!(
        "totals: incremental {total_incr:.2?} vs scratch {total_scratch:.2?} ({:.1}x); \
         every step matched scratch within {DRIFT_BOUND:.0e} L1",
        total_scratch.as_secs_f64() / total_incr.as_secs_f64().max(1e-9)
    );
    Ok(())
}

/// Hand-rolled JSON (the workspace is offline — no serde): one record per
/// churn step plus the final graph shape.
fn render_json(final_graph: &DocGraph, smoke: bool, records: &[StepRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"exp_churn\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"final_docs\": {},", final_graph.n_docs());
    let _ = writeln!(out, "  \"final_sites\": {},", final_graph.n_sites());
    let _ = writeln!(out, "  \"final_links\": {},", final_graph.n_links());
    let _ = writeln!(out, "  \"drift_bound\": {DRIFT_BOUND:e},");
    out.push_str("  \"steps\": [\n");
    for (i, r) in records.iter().enumerate() {
        let speedup = r.scratch.as_secs_f64() / r.incremental.as_secs_f64().max(1e-9);
        let _ = write!(
            out,
            "    {{\"step\": {}, \"kind\": \"{}\", \"docs\": {}, \"sites\": {}, \
             \"incremental_ms\": {:.3}, \"scratch_ms\": {:.3}, \"speedup\": {:.2}, \
             \"sites_recomputed\": {}, \"sites_reused\": {}, \"l1_drift\": {:.3e}}}",
            r.step,
            r.kind,
            r.docs,
            r.sites,
            r.incremental.as_secs_f64() * 1e3,
            r.scratch.as_secs_f64() * 1e3,
            speedup,
            r.sites_recomputed,
            r.sites_reused,
            r.l1_drift
        );
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
