//! Experiment E2: the Section 2.3 worked example and Figure 2.
//!
//! Recomputes every vector the paper prints (`π_G^1..3`, `π_Y`, `π̃_Y`,
//! `π_W`, `π̃_W`), side by side with the printed values, and verifies the
//! Partition Theorem and the highlighted `π̃(2,3)` multiplication.
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_fig2`

use lmm_bench::{experiment_engine, section};
use lmm_core::approaches::LmmParams;
use lmm_core::global::phase_gatekeeper_distributions;
use lmm_core::model::GlobalState;
use lmm_core::worked_example as we;
use lmm_core::{verify_partition_theorem, LmmError};
use lmm_linalg::{power::stationary_distribution, PowerOptions};
use lmm_rank::pagerank::PageRank;

fn print_vs(name: &str, ours: &[f64], paper: &[f64]) {
    print!("{name:<10} ours:  ");
    for v in ours {
        print!("{v:.4} ");
    }
    print!("\n{:<10} paper: ", "");
    for v in paper {
        print!("{v:.4} ");
    }
    let max_diff = ours
        .iter()
        .zip(paper)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("  (max diff {max_diff:.1e})");
}

fn main() -> Result<(), LmmError> {
    let model = we::paper_model()?;
    let alpha = we::PAPER_ALPHA;
    let opts = PowerOptions::default();

    section("Gatekeeper distributions (local PageRanks, Section 2.3.2)");
    let dists = phase_gatekeeper_distributions(&model, alpha, &opts)?;
    print_vs("pi_G^1", dists[0].scores(), &we::PAPER_PI_G1);
    print_vs("pi_G^2", dists[1].scores(), &we::PAPER_PI_G2);
    print_vs("pi_G^3", dists[2].scores(), &we::PAPER_PI_G3);

    section("Phase-layer vectors");
    let pr_y = PageRank::new().damping(alpha).run(model.phase_matrix())?;
    print_vs("pi_Y", pr_y.ranking.scores(), &we::PAPER_PI_Y);
    let (tilde_y, _) = stationary_distribution(model.phase_matrix().matrix(), &opts)?;
    print_vs("pi~_Y", &tilde_y, &we::PAPER_PI_Y_TILDE);

    section("Figure 2: global rankings");
    let a1 = model.pagerank_of_global(alpha)?;
    let a2 = model.stationary_of_global(alpha)?;
    print_vs("pi_W", a1.scores(), &we::PAPER_PI_W);
    print_vs("pi~_W", a2.scores(), &we::PAPER_PI_W_TILDE);

    section("Rank order (1 = highest)");
    let positions = a2.ranking().positions();
    print!("state: ");
    for idx in 0..model.total_states() {
        print!("{} ", model.state_of(idx));
    }
    print!("\nours:  ");
    for p in &positions {
        print!("{:>5} ", p + 1);
    }
    print!("\npaper: ");
    for p in we::PAPER_RANK_POSITIONS {
        print!("{:>5} ", p + 1);
    }
    println!();
    assert_eq!(positions, we::PAPER_RANK_POSITIONS.to_vec());

    section("Highlighted state (2,3)");
    let s23 = GlobalState::new(1, 2);
    let a3 = model.layered_with_pagerank_site(alpha)?;
    let a4 = model.layered_method(alpha)?;
    println!(
        "Approach 3: pi(2,3)  = {:.4} (paper {:.4})",
        a3.score_state(s23),
        we::PAPER_STATE_23_APPROACH3
    );
    println!(
        "Approach 4: pi~(2,3) = {:.4} (paper {:.4})",
        a4.score_state(s23),
        we::PAPER_STATE_23_LAYERED
    );

    section("Partition Theorem (Theorem 2)");
    let check = verify_partition_theorem(&model, &LmmParams::with_factor(alpha))?;
    println!("{check}");
    assert!(check.linf < 1e-9);

    section("The same theorem through the unified RankEngine");
    let mut cfg = lmm_graph::generator::CampusWebConfig::small();
    cfg.total_docs = 500;
    cfg.n_sites = 10;
    cfg.spam_farms.clear();
    let graph = cfg.generate().map_err(lmm_core::LmmError::Graph)?;
    let engine_check = (|| -> Result<(), lmm_engine::EngineError> {
        let mut a2 = experiment_engine(lmm_engine::BackendSpec::CentralizedStationary)?;
        a2.rank(&graph)?;
        let mut a4 = experiment_engine(lmm_engine::BackendSpec::Layered {
            site_layer: lmm_core::siterank::SiteLayerMethod::Stationary,
        })?;
        a4.rank(&graph)?;
        let cmp = a2.compare(a4.outcome()?, 10)?;
        println!("{cmp}");
        assert!(cmp.linf < 1e-9);
        Ok(())
    })();
    engine_check.expect("engine-level Partition Theorem");
    println!("\nAll Figure 2 values reproduced.");
    Ok(())
}
