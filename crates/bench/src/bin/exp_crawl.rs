//! Experiment E11: partial-crawl ranking stability (Section 2.2's
//! self-similarity argument).
//!
//! The paper motivates bottom-up, decentralized ranking with the Web's
//! self-similarity: "part of it demonstrates properties similar to those of
//! the whole Web", so rankings computed on partial views should already be
//! useful. This experiment crawls the synthetic campus web from the portal
//! root with growing page budgets (exactly the paper's crawl methodology),
//! ranks each partial graph with both methods, and measures agreement with
//! the full-graph ranking over the crawled pages.
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_crawl`

use lmm_bench::{experiment_engine, section};
use lmm_core::siterank::SiteLayerMethod;
use lmm_engine::BackendSpec;
use lmm_graph::crawler::{crawl, CrawlConfig};
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::DocId;
use lmm_rank::{metrics, Ranking};

/// Restricts a full-graph score vector to the crawled pages (in crawl
/// numbering) and renormalizes, so partial and full rankings compare over
/// the same item set.
fn restrict(full_scores: &[f64], visited: &[DocId]) -> Ranking {
    let weights: Vec<f64> = visited.iter().map(|d| full_scores[d.index()]).collect();
    Ranking::from_weights(weights).expect("positive scores")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = CampusWebConfig::paper_scale();
    cfg.total_docs = 20_000;
    let graph = cfg.generate()?;
    // One engine per method, reused across every (partial) graph — each
    // rank() call on a new graph recomputes; unchanged graphs hit the cache.
    let mut flat_engine = experiment_engine(BackendSpec::FlatPageRank)?;
    let mut layered_engine = experiment_engine(BackendSpec::Layered {
        site_layer: SiteLayerMethod::PageRank,
    })?;
    let full_flat = flat_engine.rank(&graph)?.clone();
    let full_layered = layered_engine.rank(&graph)?.clone();
    let spam = graph.spam_labels();

    section("Ranking stability vs crawl coverage (BFS from the portal root)");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "budget", "coverage", "tau flat", "tau layered", "flat spam@15", "lmm spam@15"
    );
    for budget_pct in [5usize, 10, 20, 40, 60, 80, 100] {
        let budget = (graph.n_docs() * budget_pct).div_ceil(100);
        let result = crawl(&graph, &CrawlConfig::from_seed(DocId(0), budget))?;
        let partial_flat = flat_engine.rank(&result.graph)?.clone();
        let partial_layered = layered_engine.rank(&result.graph)?.clone();

        let tau_flat = metrics::kendall_tau(
            &partial_flat.ranking,
            &restrict(full_flat.ranking.scores(), &result.visited),
        );
        let tau_layered = metrics::kendall_tau(
            &partial_layered.ranking,
            &restrict(full_layered.ranking.scores(), &result.visited),
        );
        let partial_spam: Vec<bool> = result.visited.iter().map(|d| spam[d.index()]).collect();
        println!(
            "{:>9}% {:>9.1}% {:>12.3} {:>12.3} {:>13.0}% {:>13.0}%",
            budget_pct,
            100.0 * result.coverage(&graph),
            tau_flat,
            tau_layered,
            100.0 * metrics::labeled_share_at_k(&partial_flat.ranking, &partial_spam, 15),
            100.0 * metrics::labeled_share_at_k(&partial_layered.ranking, &partial_spam, 15),
        );
    }
    println!(
        "\nReading: high tau at small coverage supports the paper's self-similarity\n\
         argument — partial (per-peer) views already induce the full ranking's order,\n\
         and the layered method's spam resistance holds at every coverage level."
    );
    Ok(())
}
