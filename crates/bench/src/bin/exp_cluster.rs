//! Experiment PR6: the remote shard fabric under churn, over real sockets.
//!
//! Stands up a full loopback cluster — one [`ClusterController`], four
//! [`ShardNode`]s owning eight shard ranges behind real `TcpListener`s,
//! and a [`ClusterClient`] — next to the in-process [`ShardedServer`]
//! serving the *same* snapshots, then drives both through a churn stream
//! of structural deltas (local rewires, site-layer-staling cross links,
//! and page removals, so publishes exercise every swap grade). Midway
//! through, one node is killed outright. Three properties are asserted,
//! not just measured:
//!
//! * **bitwise parity** — at every published epoch the cluster's answers
//!   (`top_k`, `score_batch`, `top_k_for_site`, `compare`) equal the
//!   in-process tier's *bit for bit*: scores cross the wire as IEEE-754
//!   bit patterns, so distribution must change nothing;
//! * **epoch consistency** — probes issued *during* every over-the-wire
//!   publish answer from the pre-swap or post-swap epoch, never a mix;
//!   during the node-kill window every response is either correct at the
//!   pinned rank epoch or a *retriable* error — zero wrong-epoch
//!   responses, counted and asserted;
//! * **failover** — the controller evicts the dead node on missed
//!   heartbeats, reassigns its shard ranges to survivors, rebuilds them
//!   from the pinned snapshot, and bumps the cluster epoch; the churn
//!   stream then continues on the surviving nodes.
//!
//! Writes `BENCH_pr6.json` (`--smoke` writes `BENCH_pr6_smoke.json` for
//! CI so the committed measurements are never clobbered).
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_cluster`

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use lmm_bench::{section, timed};
use lmm_cluster::{
    ClientConfig, ClusterClient, ClusterController, ClusterPublishReport, ControllerConfig,
    NodeConfig, ShardNode,
};
use lmm_engine::{BackendSpec, RankEngine, RankSnapshot};
use lmm_graph::delta::GraphDelta;
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::sharding::ShardMap;
use lmm_graph::{DocGraph, DocId, SiteId};
use lmm_serve::{ServeConfig, ShardedServer};

const OUT_PATH: &str = "BENCH_pr6.json";
const SMOKE_OUT_PATH: &str = "BENCH_pr6_smoke.json";
const N_NODES: usize = 4;
const N_SHARDS: usize = 8;
const TOP_K: usize = 10;
const PROBES_PER_SWAP: usize = 25;

struct StepRecord {
    step: usize,
    kind: &'static str,
    cepoch: u64,
    rank_epoch: u64,
    publish: Duration,
    report: ClusterPublishReport,
    probe_old: usize,
    probe_new: usize,
    probe_retriable: usize,
}

struct FailoverRecord {
    after_step: usize,
    wall: Duration,
    cepoch_before: u64,
    cepoch_after: u64,
    queries_during: u64,
    retriable_during: u64,
    wrong_epoch: u64,
}

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }
    fn next(&mut self, m: usize) -> usize {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 33) as usize % m
    }
}

/// Intra-site rewire plus growth: only the touched shards rebuild.
fn local_delta(graph: &DocGraph, step: usize) -> GraphDelta {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    let mut site = (step * 7 + 3) % n_sites;
    while graph.site_size(SiteId(site)) < 3 {
        site = (site + 1) % n_sites;
    }
    let docs = graph.docs_of_site(SiteId(site));
    delta.remove_link(docs[0], docs[1]).expect("in range");
    delta.add_link(docs[1], docs[2]).expect("in range");
    delta.add_link(docs[2], docs[0]).expect("in range");
    let mut target = (step * 5 + 1) % n_sites;
    while graph.site_size(SiteId(target)) < 1 {
        target = (target + 1) % n_sites;
    }
    let target = SiteId(target);
    let root = graph.docs_of_site(target)[0];
    let p = delta
        .add_page(target, &format!("http://cluster-grow-{step}.page/"))
        .expect("existing site");
    delta.add_link(root, p).expect("in range");
    delta.add_link(p, root).expect("in range");
    delta
}

/// Cross link (plus a new site every 2nd time): stales the site layer and
/// forces a full rebuild publish — the worst-case wire fan-out.
fn global_delta(graph: &DocGraph, step: usize) -> GraphDelta {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    let mut site_a = (step * 11 + 2) % n_sites;
    while graph.site_size(SiteId(site_a)) < 1 {
        site_a = (site_a + 1) % n_sites;
    }
    let mut site_b = (step * 13 + 5) % n_sites;
    while site_b == site_a || graph.site_size(SiteId(site_b)) < 1 {
        site_b = (site_b + 1) % n_sites;
    }
    let a = graph.docs_of_site(SiteId(site_a))[0];
    let b = graph.docs_of_site(SiteId(site_b))[0];
    delta.add_link(a, b).expect("in range");
    if step.is_multiple_of(2) {
        let s = delta.add_site(&format!("cluster-{step}.example"));
        let mut pages = Vec::new();
        for i in 0..3 {
            pages.push(
                delta
                    .add_page(s, &format!("http://cluster-{step}.example/{i}"))
                    .expect("new site"),
            );
        }
        for w in pages.windows(2) {
            delta.add_link(w[0], w[1]).expect("in range");
        }
        delta.add_link(pages[2], pages[0]).expect("in range");
        delta.add_link(a, pages[0]).expect("in range");
        delta.add_link(pages[0], a).expect("in range");
    }
    delta
}

/// Whole-site retirement plus a page removal elsewhere: SiteRank reruns
/// over the survivors (`Staleness::Resized`), so the publish *rebuilds*
/// the named shards and *refreshes* every other one — re-merging intact
/// per-site orders under the rescaled scores, over the wire.
fn removal_delta(graph: &DocGraph, step: usize) -> GraphDelta {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    let mut site = (step * 13 + 5) % n_sites;
    while graph.site_size(SiteId(site)) < 4 {
        site = (site + 1) % n_sites;
    }
    delta.remove_site(SiteId(site)).expect("live site");
    let mut shrink = (step * 17 + 11) % n_sites;
    while shrink == site || graph.site_size(SiteId(shrink)) < 4 {
        shrink = (shrink + 1) % n_sites;
    }
    let docs = graph.docs_of_site(SiteId(shrink));
    delta
        .remove_page(docs[docs.len() - 1])
        .expect("populous site");
    delta
}

/// Full-surface bitwise parity between the cluster and the in-process
/// tier at one epoch. Panics (failing the experiment) on any drift.
fn assert_parity(
    client: &ClusterClient,
    server: &ShardedServer,
    snapshot: &RankSnapshot,
    rng: &mut XorShift,
) {
    let want_epoch = snapshot.epoch();

    let (le, local_top) = server.top_k(TOP_K).expect("local top_k");
    let (re, remote_top) = client.top_k(TOP_K).expect("cluster top_k");
    assert_eq!((le, re), (want_epoch, want_epoch), "top_k epoch drift");
    assert_eq!(local_top.len(), remote_top.len());
    for (l, r) in local_top.iter().zip(remote_top.iter()) {
        assert_eq!(l.0, r.0, "top_k doc drift");
        assert_eq!(
            l.1.to_bits(),
            r.1.to_bits(),
            "top_k score drift at {:?}",
            l.0
        );
    }

    let live: Vec<DocId> = (0..snapshot.n_docs())
        .map(DocId)
        .filter(|&d| snapshot.is_live_doc(d))
        .collect();
    let batch: Vec<DocId> = (0..64.min(live.len()))
        .map(|_| live[rng.next(live.len())])
        .collect();
    let (le, local_scores) = server.score_batch(&batch).expect("local batch");
    let (re, remote_scores) = client.score_batch(&batch).expect("cluster batch");
    assert_eq!((le, re), (want_epoch, want_epoch), "batch epoch drift");
    for (i, (l, r)) in local_scores.iter().zip(remote_scores.iter()).enumerate() {
        assert_eq!(l.to_bits(), r.to_bits(), "score drift at {:?}", batch[i]);
    }

    for _ in 0..8 {
        let site = SiteId(rng.next(snapshot.n_sites()));
        match (
            server.top_k_for_site(site, 5),
            client.top_k_for_site(site, 5),
        ) {
            (Ok((le, l)), Ok((re, r))) => {
                assert_eq!((le, re), (want_epoch, want_epoch), "site epoch drift");
                assert_eq!(l.len(), r.len(), "site {site:?} length drift");
                for (a, b) in l.iter().zip(r.iter()) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }
            (Err(_), Err(_)) => {}
            (l, r) => panic!("site {site:?}: local {l:?} vs cluster {r:?}"),
        }
    }

    for _ in 0..8 {
        let (a, b) = (live[rng.next(live.len())], live[rng.next(live.len())]);
        let (le, local_ord) = server.compare(a, b).expect("local compare");
        let (re, remote_ord) = client.compare(a, b).expect("cluster compare");
        assert_eq!((le, re), (want_epoch, want_epoch), "compare epoch drift");
        assert_eq!(local_ord, remote_ord, "compare drift {a:?} vs {b:?}");
    }
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let steps = if smoke { 4 } else { 10 };
    let kill_after_step = steps / 2 - 1; // kill once, mid-run

    let mut cfg = CampusWebConfig::paper_scale();
    cfg.spam_farms.clear();
    cfg.seed = 23;
    if smoke {
        cfg.total_docs = 2_000;
        cfg.n_sites = 40;
    } else {
        cfg.total_docs = 100_000;
        cfg.n_sites = 400;
    }
    let base = cfg.generate()?;

    section(&format!(
        "Remote shard fabric: {} docs, {} sites, {} links; {N_NODES} nodes x {N_SHARDS} shards, {steps} churn steps, node kill after step {kill_after_step}",
        base.n_docs(),
        base.n_sites(),
        base.n_links(),
    ));

    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .damping(0.85)
        .tolerance(1e-10)
        .build()?;
    let (_, warmup) = timed(|| engine.rank(&base).map(|_| ()));
    println!("base rank (cold): {warmup:.2?}");

    let map = ShardMap::balanced(&base, N_SHARDS)?;
    let controller = ClusterController::start(
        map.clone(),
        ControllerConfig {
            heartbeat_interval: Duration::from_millis(50),
            miss_limit: 2,
            io_timeout: Duration::from_secs(5),
            auto_failover: true,
            retry: lmm_cluster::RetryPolicy::default(),
            fault: None,
        },
    )?;
    let mut nodes: Vec<ShardNode> = (0..N_NODES)
        .map(|_| {
            ShardNode::start(
                controller.addr(),
                NodeConfig {
                    heap_k: 128,
                    ..NodeConfig::default()
                },
            )
        })
        .collect::<Result<_, _>>()?;
    controller.wait_for_nodes(N_NODES, Duration::from_secs(10))?;

    let snapshot = engine.snapshot()?;
    let (first, first_wall) = timed(|| controller.publish(&snapshot));
    let first = first?;
    println!(
        "first publish: {} shards rebuilt across {} nodes in {first_wall:.2?} ({:.1} ms max node fan-out)",
        first.rebuilt, first.nodes, first.max_fanout_ms
    );

    let server = ShardedServer::start(
        map,
        &snapshot,
        ServeConfig {
            heap_k: 128,
            max_gather_retries: 4,
            direct_reads: true,
        },
    )?;
    let client = ClusterClient::new(controller.addr(), ClientConfig::default());
    let mut parity_rng = XorShift::new(0xc1u64 << 32 | 0x5eed);
    assert_parity(&client, &server, &snapshot, &mut parity_rng);

    let bench_start = Instant::now();
    let mut current = base;
    let mut records: Vec<StepRecord> = Vec::new();
    let mut failover: Option<FailoverRecord> = None;
    println!(
        "{:>5} {:>8} {:>7} {:>6} {:>10} {:>22} {:>14}",
        "step", "kind", "cepoch", "rank", "publish", "rebuild/refresh/repin", "probes old|new"
    );
    for step in 0..steps {
        let (delta, kind) = match step % 3 {
            2 => (global_delta(&current, step), "global"),
            1 => (removal_delta(&current, step), "removal"),
            _ => (local_delta(&current, step), "local"),
        };
        let (mutated, _) = current.apply(&delta)?;
        engine.apply_delta(&delta)?;
        current = mutated;
        let snapshot = engine.snapshot()?;
        let old_epoch = snapshot.epoch() - 1;
        let new_epoch = snapshot.epoch();
        let want_top = engine.top_k(TOP_K)?;
        let old_top = server.top_k(TOP_K)?.1;

        // Epoch-consistency probe *during* the over-the-wire publish:
        // every answer is wholly pre-swap or wholly post-swap.
        let prober = {
            let controller_addr = controller.addr().to_string();
            let want_top = want_top.clone();
            std::thread::spawn(move || {
                let probe_client = ClusterClient::new(&controller_addr, ClientConfig::default());
                let (mut old, mut new, mut retriable) = (0usize, 0usize, 0usize);
                for _ in 0..PROBES_PER_SWAP {
                    match probe_client.top_k(TOP_K) {
                        Ok((epoch, top)) => {
                            assert!(
                                epoch == old_epoch || epoch == new_epoch,
                                "probe answered from epoch {epoch}, swap is {old_epoch}->{new_epoch}"
                            );
                            let want = if epoch == old_epoch {
                                &old_top
                            } else {
                                &want_top
                            };
                            assert_eq!(top.len(), want.len(), "torn probe at epoch {epoch}");
                            for (a, b) in top.iter().zip(want.iter()) {
                                assert_eq!(a.0, b.0, "torn probe at epoch {epoch}");
                                assert_eq!(a.1.to_bits(), b.1.to_bits(), "torn probe bits");
                            }
                            if epoch == old_epoch {
                                old += 1;
                            } else {
                                new += 1;
                            }
                        }
                        Err(err) => {
                            assert!(err.is_retriable(), "non-retriable probe error: {err}");
                            retriable += 1;
                        }
                    }
                }
                (old, new, retriable)
            })
        };
        let (report, publish_wall) = timed(|| controller.publish(&snapshot));
        let report = report?;
        let (probe_old, probe_new, probe_retriable) =
            prober.join().expect("prober panicked (torn response?)");
        server.publish(&snapshot)?;

        assert_eq!(report.rank_epoch, new_epoch, "publish rank epoch drift");
        assert_parity(&client, &server, &snapshot, &mut parity_rng);

        println!(
            "{:>5} {:>8} {:>7} {:>6} {:>10.2?} {:>10}/{}/{:<7} {:>9}|{:<4}",
            step,
            kind,
            report.epoch,
            report.rank_epoch,
            publish_wall,
            report.rebuilt,
            report.refreshed,
            report.repinned,
            probe_old,
            probe_new,
        );
        records.push(StepRecord {
            step,
            kind,
            cepoch: report.epoch,
            rank_epoch: report.rank_epoch,
            publish: publish_wall,
            report,
            probe_old,
            probe_new,
            probe_retriable,
        });

        if step == kill_after_step {
            // Kill a node outright — no deregistration, no goodbye. The
            // controller must notice via missed heartbeats, evict, and
            // republish the pinned snapshot on the survivors.
            let victim = nodes.remove(0);
            let victim_addr = victim.addr().to_string();
            let (cepoch_before, rank_now) = controller.epochs();
            println!("  >> killing node at {victim_addr} (cluster epoch {cepoch_before})");
            // Kill on a side thread: the join inside `kill` can outlast
            // the whole eviction window, and the point is to query
            // *through* that window.
            let kill_start = Instant::now();
            let killer = std::thread::spawn(move || victim.kill());
            let deadline = kill_start + Duration::from_secs(30);
            let (mut during, mut retriable, mut wrong) = (0u64, 0u64, 0u64);
            while controller.epochs().0 == cepoch_before {
                assert!(
                    Instant::now() < deadline,
                    "controller never evicted the dead node"
                );
                match client.top_k(TOP_K) {
                    Ok((epoch, top)) => {
                        if epoch == rank_now && top == want_top {
                            during += 1;
                        } else {
                            wrong += 1;
                        }
                    }
                    Err(err) if err.is_retriable() => retriable += 1,
                    Err(err) => panic!("non-retriable during failover: {err}"),
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            let wall = kill_start.elapsed();
            killer.join().expect("node kill panicked");
            let (cepoch_after, rank_after) = controller.epochs();
            assert_eq!(rank_after, rank_now, "failover changed the ranking");
            assert_eq!(wrong, 0, "{wrong} wrong-epoch responses during failover");
            assert_parity(&client, &server, &snapshot, &mut parity_rng);
            println!(
                "  >> failover complete in {wall:.2?}: cluster epoch {cepoch_before} -> {cepoch_after}, \
                 {} survivors; {during} correct + {retriable} retriable during the window",
                controller.n_nodes()
            );
            failover = Some(FailoverRecord {
                after_step: step,
                wall,
                cepoch_before,
                cepoch_after,
                queries_during: during,
                retriable_during: retriable,
                wrong_epoch: wrong,
            });
        }
    }
    let wall = bench_start.elapsed();

    let failover = failover.expect("node kill never ran");
    let stats = controller.stats();
    let client_stats = client.stats();
    assert!(stats.evictions >= 1, "eviction not counted");
    assert!(stats.failovers >= 1, "failover not counted");
    assert_eq!(stats.nodes.len(), N_NODES - 1);
    assert_eq!(stats.rank_epoch, engine.epoch());
    let total_probe_errors: usize = records.iter().map(|r| r.probe_retriable).sum();
    println!(
        "\n{} publishes over the wire in {wall:.2?}; doc skew {:.3}; \
         {} gather retries, {} escalations, {} node failures seen by the client; \
         {total_probe_errors} retriable probe errors, 0 wrong-epoch responses",
        stats.publishes,
        stats.doc_skew,
        client_stats.gather_retries,
        client_stats.gather_escalations,
        client_stats.node_failures
    );

    let json = render_json(
        &current,
        smoke,
        &records,
        &failover,
        &stats,
        &client_stats,
        wall,
    );
    let out_path = if smoke { SMOKE_OUT_PATH } else { OUT_PATH };
    std::fs::write(out_path, json)?;
    println!("wrote {out_path}");

    controller.shutdown();
    for node in nodes {
        node.kill();
    }
    Ok(())
}

fn render_json(
    final_graph: &DocGraph,
    smoke: bool,
    records: &[StepRecord],
    failover: &FailoverRecord,
    stats: &lmm_cluster::ClusterStats,
    client_stats: &lmm_cluster::ClientStats,
    wall: Duration,
) -> String {
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"exp_cluster\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"host_threads\": {host_threads},");
    let _ = writeln!(out, "  \"n_nodes\": {N_NODES},");
    let _ = writeln!(out, "  \"n_shards\": {N_SHARDS},");
    let _ = writeln!(out, "  \"final_docs\": {},", final_graph.n_docs());
    let _ = writeln!(out, "  \"final_sites\": {},", final_graph.n_sites());
    let _ = writeln!(out, "  \"final_links\": {},", final_graph.n_links());
    out.push_str("  \"steps\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"step\": {}, \"kind\": \"{}\", \"cluster_epoch\": {}, \"rank_epoch\": {}, \
             \"publish_ms\": {:.3}, \"max_node_fanout_ms\": {:.3}, \
             \"shards_rebuilt\": {}, \"shards_refreshed\": {}, \"shards_repinned\": {}, \
             \"shards_reassigned\": {}, \"publish_attempts\": {}, \
             \"probe_old_epoch\": {}, \"probe_new_epoch\": {}, \"probe_retriable\": {}}}",
            r.step,
            r.kind,
            r.cepoch,
            r.rank_epoch,
            r.publish.as_secs_f64() * 1e3,
            r.report.max_fanout_ms,
            r.report.rebuilt,
            r.report.refreshed,
            r.report.repinned,
            r.report.reassigned,
            r.report.attempts,
            r.probe_old,
            r.probe_new,
            r.probe_retriable,
        );
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"failover\": {{");
    let _ = writeln!(out, "    \"after_step\": {},", failover.after_step);
    let _ = writeln!(
        out,
        "    \"detect_and_republish_ms\": {:.3},",
        failover.wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        out,
        "    \"cluster_epoch_before\": {},",
        failover.cepoch_before
    );
    let _ = writeln!(
        out,
        "    \"cluster_epoch_after\": {},",
        failover.cepoch_after
    );
    let _ = writeln!(
        out,
        "    \"correct_responses_during\": {},",
        failover.queries_during
    );
    let _ = writeln!(
        out,
        "    \"retriable_errors_during\": {},",
        failover.retriable_during
    );
    let _ = writeln!(
        out,
        "    \"wrong_epoch_responses\": {}",
        failover.wrong_epoch
    );
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"totals\": {{");
    let _ = writeln!(out, "    \"wall_ms\": {:.3},", wall.as_secs_f64() * 1e3);
    let _ = writeln!(out, "    \"publishes\": {},", stats.publishes);
    let _ = writeln!(out, "    \"evictions\": {},", stats.evictions);
    let _ = writeln!(out, "    \"failovers\": {},", stats.failovers);
    let _ = writeln!(
        out,
        "    \"missed_heartbeats\": {},",
        stats.missed_heartbeats
    );
    let _ = writeln!(out, "    \"doc_skew\": {:.4},", stats.doc_skew);
    let _ = writeln!(
        out,
        "    \"tombstone_rejections\": {},",
        stats.tombstone_rejections
    );
    let _ = writeln!(
        out,
        "    \"controller_bytes_sent\": {},",
        stats.controller_bytes.0
    );
    let _ = writeln!(
        out,
        "    \"controller_bytes_recv\": {},",
        stats.controller_bytes.1
    );
    let _ = writeln!(out, "    \"client_bytes_sent\": {},", client_stats.bytes.0);
    let _ = writeln!(out, "    \"client_bytes_recv\": {},", client_stats.bytes.1);
    let _ = writeln!(
        out,
        "    \"client_gather_retries\": {},",
        client_stats.gather_retries
    );
    let _ = writeln!(
        out,
        "    \"client_gather_escalations\": {},",
        client_stats.gather_escalations
    );
    let _ = writeln!(
        out,
        "    \"client_node_failures\": {},",
        client_stats.node_failures
    );
    let _ = writeln!(
        out,
        "    \"client_placement_refreshes\": {}",
        client_stats.placement_refreshes
    );
    out.push_str("  },\n");
    out.push_str("  \"nodes\": [\n");
    for (i, n) in stats.nodes.iter().enumerate() {
        let (docs, skew, bytes_sent, bytes_recv, queries) =
            n.wire.as_ref().map_or((0, 0.0, 0, 0, 0), |w| {
                (
                    w.n_docs(),
                    w.doc_skew(),
                    w.bytes_sent,
                    w.bytes_recv,
                    w.queries,
                )
            });
        let _ = write!(
            out,
            "    {{\"node\": {}, \"addr\": \"{}\", \"rtt_us\": {}, \"missed\": {}, \
             \"last_fanout_ms\": {:.3}, \"docs\": {}, \"doc_skew\": {:.4}, \
             \"bytes_sent\": {}, \"bytes_recv\": {}, \"queries\": {}}}",
            n.node,
            n.addr,
            n.rtt_us,
            n.missed,
            n.last_fanout_ms,
            docs,
            skew,
            bytes_sent,
            bytes_recv,
            queries,
        );
        out.push_str(if i + 1 == stats.nodes.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
