//! Experiments E3 + E4: Figures 3 and 4 — the campus-web evaluation,
//! through the unified `RankEngine`.
//!
//! Generates the synthetic campus web (218 sites, ≈50k pages; `--full`
//! approximates the paper's 433k), ranks it with the flat-PageRank backend
//! (Figure 3) and the layered backend (Figure 4), prints both top-15
//! lists, and reports the quantitative spam shares plus in-degree
//! diagnostics matching the paper's narrative (the `Webdriver?` page with
//! huge in-degree, etc.).
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_campus [--full]`

use lmm_bench::{campus_config_from_args, experiment_engine, print_top_k, section, timed};
use lmm_core::siterank::SiteLayerMethod;
use lmm_engine::BackendSpec;
use lmm_graph::stats::summarize;
use lmm_graph::DocId;
use lmm_rank::metrics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = campus_config_from_args();
    let (graph, gen_time) = timed(|| cfg.generate());
    let graph = graph?;
    section("Campus web (synthetic stand-in for the EPFL crawl)");
    println!("{}", summarize(&graph));
    println!("generated in {gen_time:.2?} (seed {})", cfg.seed);

    // The paper's in-degree observation: the top spam page collected 17004
    // in-links on 433k pages.
    let indeg = graph.in_degrees();
    let spam = graph.spam_labels();
    let top_spam_indeg = (0..graph.n_docs())
        .filter(|&d| spam[d])
        .max_by_key(|&d| indeg[d])
        .expect("farms exist");
    println!(
        "most-linked spam page: {} with {} in-links",
        graph.url(DocId(top_spam_indeg)),
        indeg[top_spam_indeg]
    );

    let mut flat_engine = experiment_engine(BackendSpec::FlatPageRank)?;
    let (flat, t_flat) = timed(|| flat_engine.rank(&graph).cloned());
    let flat = flat?;
    let mut layered_engine = experiment_engine(BackendSpec::Layered {
        site_layer: SiteLayerMethod::PageRank,
    })?;
    let (layered, t_layered) = timed(|| layered_engine.rank(&graph).cloned());
    let layered = layered?;

    section("Figure 3 analogue: top 15 by flat PageRank");
    print_top_k(&graph, &flat.ranking, 15);
    println!(
        "  [{} iterations, {t_flat:.2?} wall]",
        flat.telemetry.site_iterations
    );

    section("Figure 4 analogue: top 15 by the LMM-based layered method");
    print_top_k(&graph, &layered.ranking, 15);
    println!(
        "  [site: {} iters; locals: {} total / {} critical path; {t_layered:.2?} wall]",
        layered.telemetry.site_iterations,
        layered.telemetry.total_local_iterations,
        layered.telemetry.max_local_iterations
    );

    section("Quantitative comparison");
    for k in [10, 15, 25, 50, 100] {
        println!(
            "  spam share @ {k:>3}:  PageRank {:>5.1}%   Layered {:>5.1}%",
            100.0 * metrics::labeled_share_at_k(&flat.ranking, &spam, k),
            100.0 * metrics::labeled_share_at_k(&layered.ranking, &spam, k),
        );
    }
    println!("  {}", layered.compare(&flat, 15)?);
    Ok(())
}
