//! Experiment PR10: open-loop query latency for the serving tier — the
//! direct (lock-free) read path against the worker (mpsc) path.
//!
//! A closed-loop generator (`exp_serve`) back-pressures itself: when a
//! swap stalls the server, the generator stops sending, and the stall
//! disappears from the numbers (coordinated omission). This bench is
//! **open-loop in virtual time**: a deterministic splitmix64 schedule
//! draws exponential inter-arrival gaps for a fixed arrival rate, the
//! generator issues queries back-to-back measuring each one's *real*
//! service time, and latency comes from the single-server queue
//! recurrence `depart_i = max(arrival_i, depart_{i-1}) + service_i` —
//! a query's latency is `depart_i - arrival_i`, so queueing delay
//! behind a slow response is charged to the responses that caused it.
//! (Pacing with wall-clock sleeps instead would hand the measurement to
//! the host scheduler: on a small box the sleep/spin pattern of the
//! generator itself decides which phase gets starved around a publish,
//! drowning the path under test. The virtual queue keeps the schedule
//! exact and the generator's CPU profile identical across phases.) The
//! virtual backlog `depart_{i-1} - arrival_i` is bounded
//! (`BACKLOG_CAP`): a run more than the cap behind re-anchors its
//! schedule and counts a clamp, so a saturated path terminates with its
//! tail pinned at the cap instead of compounding forever.
//!
//! Two phases share one ranked snapshot sequence and one arrival
//! schedule (same seed, same rate):
//!
//! * **direct** — `direct_reads: true`: point queries answer on the
//!   caller's thread through `ArcCell` snapshot loads;
//! * **mpsc** — `direct_reads: false`: every query hops through a shard
//!   worker's request channel (the pre-PR10 path, kept as the compat
//!   toggle).
//!
//! While the generator runs, a publisher thread hot-swaps the next
//! snapshot each time the arrival stream crosses an even query-count
//! threshold; samples overlapping a swap window are tagged so
//! swap-induced tail shows up separately. Per query kind the bench
//! reports p50/p90/p99/p999 (exact, from sorted samples), and the full
//! run asserts the direct point-query p99 lands strictly below the mpsc
//! point-query p99 at the same arrival rate. Every response's epoch must
//! be one the publisher actually published — a wrong-epoch response
//! fails the run.
//!
//! Writes `BENCH_pr10.json` (`--smoke` writes `BENCH_pr10_smoke.json`
//! for CI so the committed measurements are never clobbered).
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_latency`

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lmm_bench::{section, timed};
use lmm_engine::{BackendSpec, RankEngine, RankSnapshot};
use lmm_graph::delta::GraphDelta;
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::sharding::ShardMap;
use lmm_graph::{DocGraph, DocId, SiteId};
use lmm_serve::{ServeConfig, ShardedServer};

const OUT_PATH: &str = "BENCH_pr10.json";
const SMOKE_OUT_PATH: &str = "BENCH_pr10_smoke.json";
/// Max virtual-time backlog (`depart_{i-1} - arrival_i`) before the
/// schedule re-anchors: queueing delay is measured up to this bound,
/// then clamped (and counted), so a saturated path reports a tail pinned
/// at the cap instead of a runaway queue.
const BACKLOG_CAP: Duration = Duration::from_millis(200);
const TOP_K: usize = 10;
const SITE_K: usize = 5;
const BATCH_LEN: usize = 4;

/// Deterministic splitmix64: the arrival schedule and query mix are a
/// pure function of the seed, so both phases replay the identical load.
struct SplitMix(u64);

impl SplitMix {
    fn new(seed: u64) -> Self {
        Self(seed)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64)
    }
    fn below(&mut self, m: usize) -> usize {
        (self.next_u64() % m as u64) as usize
    }
}

/// The query kinds, with their JSON names and whether they ride the
/// direct path under `direct_reads: true`. `top_k` is the cross-shard
/// gather — worker fan-out on both phases, the control group.
const KINDS: [(&str, bool); 5] = [
    ("score", true),
    ("batch", true),
    ("site_top_k", true),
    ("compare", true),
    ("top_k", false),
];
const N_KINDS: usize = KINDS.len();

/// One measured arrival: nanoseconds from scheduled virtual arrival to
/// completion, and whether it overlapped a publish swap window.
type Sample = (u64, bool);

struct PhaseResult {
    name: &'static str,
    samples: [Vec<Sample>; N_KINDS],
    backlog_clamps: u64,
    max_lag: Duration,
    wall: Duration,
    direct_hits: u64,
    fanout_queries: u64,
    gate_escalations: u64,
    publishes: u64,
}

impl PhaseResult {
    /// All point-query samples (everything but the cross-shard gather),
    /// sorted — the population the direct-vs-mpsc p99 claim is made on.
    fn point_ns_sorted(&self) -> Vec<u64> {
        let mut all: Vec<u64> = KINDS
            .iter()
            .enumerate()
            .filter(|(_, (_, point))| *point)
            .flat_map(|(k, _)| self.samples[k].iter().map(|&(ns, _)| ns))
            .collect();
        all.sort_unstable();
        all
    }
}

/// Exact quantile over a sorted sample set (nearest-rank).
fn pctl(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Sites with at least `BATCH_LEN` docs, with their first docs — the
/// single-shard batch and co-sharded compare populations.
fn batch_sites(graph: &DocGraph) -> Vec<(SiteId, Vec<DocId>)> {
    (0..graph.n_sites())
        .map(SiteId)
        .filter(|&s| graph.site_size(s) >= BATCH_LEN)
        .map(|s| {
            let docs = graph.docs_of_site(s)[..BATCH_LEN].to_vec();
            (s, docs)
        })
        .collect()
}

/// An intra-site rewire plus one grown page: publishes stay cheap (graded
/// rebuilds, no tombstones) so the swap window, not the rebuild, is what
/// the tagged samples measure.
fn local_delta(graph: &DocGraph, step: usize) -> GraphDelta {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    let mut site = (step * 7 + 3) % n_sites;
    while graph.site_size(SiteId(site)) < 3 {
        site = (site + 1) % n_sites;
    }
    let docs = graph.docs_of_site(SiteId(site));
    delta.remove_link(docs[0], docs[1]).expect("in range");
    delta.add_link(docs[1], docs[2]).expect("in range");
    delta.add_link(docs[2], docs[0]).expect("in range");
    let target = SiteId((step * 5 + 1) % n_sites);
    let root = graph.docs_of_site(target)[0];
    let p = delta
        .add_page(target, &format!("http://latency-grow-{step}.page/"))
        .expect("existing site");
    delta.add_link(root, p).expect("in range");
    delta.add_link(p, root).expect("in range");
    delta
}

/// One open-loop phase: replay the arrival schedule drawn from `seed`
/// against a fresh server over `snaps[0]`, while a publisher thread swaps
/// in `snaps[1..]` at even query-count thresholds.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_phase(
    name: &'static str,
    direct: bool,
    base: &DocGraph,
    snaps: &[RankSnapshot],
    n_shards: usize,
    rate_hz: f64,
    arrivals: usize,
    seed: u64,
) -> PhaseResult {
    let map = ShardMap::balanced(base, n_shards).expect("shard map");
    let server = Arc::new(
        ShardedServer::start(
            map,
            &snaps[0],
            ServeConfig {
                heap_k: 128,
                max_gather_retries: 4,
                direct_reads: direct,
            },
        )
        .expect("server start"),
    );
    let published: Vec<u64> = snaps.iter().map(RankSnapshot::epoch).collect();

    // Publisher: swap in the next snapshot each time the generator's
    // progress crosses an even query-count threshold, raising the swap
    // flag around each publish so overlapping samples get tagged. The
    // publish itself runs concurrently with the query stream — its CPU
    // contention lands in the measured service times, as it would in
    // production.
    let swap_flag = Arc::new(AtomicBool::new(false));
    let progress = Arc::new(AtomicUsize::new(0));
    let publisher = {
        let server = Arc::clone(&server);
        let swap_flag = Arc::clone(&swap_flag);
        let progress = Arc::clone(&progress);
        let snaps = snaps[1..].to_vec();
        let stride = arrivals / (snaps.len() + 1);
        std::thread::spawn(move || {
            for (k, snap) in snaps.iter().enumerate() {
                let threshold = (k + 1) * stride;
                while progress.load(Ordering::SeqCst) < threshold {
                    std::thread::sleep(Duration::from_micros(500));
                }
                swap_flag.store(true, Ordering::SeqCst);
                server.publish(snap).expect("publish");
                swap_flag.store(false, Ordering::SeqCst);
            }
        })
    };

    let sites = batch_sites(base);
    assert!(!sites.is_empty(), "graph has no batch-sized sites");
    let n_docs = base.n_docs();
    let mut rng = SplitMix::new(seed);
    let mut samples: [Vec<Sample>; N_KINDS] = std::array::from_fn(|_| Vec::new());
    let mut backlog_clamps = 0u64;
    let mut max_lag = Duration::ZERO;
    let cap_ns = BACKLOG_CAP.as_nanos() as u64;
    let mut sched_ns = 0u64; // virtual arrival clock
    let mut shift_ns = 0u64; // backlog re-anchor accumulator
    let mut depart_ns = 0u64; // virtual departure of the previous query

    let start = Instant::now();
    for i in 0..arrivals {
        let gap = -(1.0 - rng.next_f64()).ln() / rate_hz;
        sched_ns += (gap * 1e9) as u64;
        let mut arrival_ns = sched_ns + shift_ns;
        let backlog = depart_ns.saturating_sub(arrival_ns);
        if backlog > cap_ns {
            // Re-anchor: charge this (and implicitly every queued
            // arrival) at most the cap, and slide the rest of the
            // schedule forward so the backlog stays bounded.
            shift_ns += backlog - cap_ns;
            arrival_ns = sched_ns + shift_ns;
            backlog_clamps += 1;
            max_lag = max_lag.max(BACKLOG_CAP);
        } else {
            max_lag = max_lag.max(Duration::from_nanos(backlog));
        }

        let kind;
        let issued = Instant::now();
        let swap_before = swap_flag.load(Ordering::SeqCst);
        let epoch = match rng.below(100) {
            0..=39 => {
                kind = 0; // score
                let doc = DocId(rng.below(n_docs));
                server.score(doc).expect("score").0
            }
            40..=59 => {
                kind = 1; // single-shard batch
                let (_, docs) = &sites[rng.below(sites.len())];
                server.score_batch(docs).expect("batch").0
            }
            60..=74 => {
                kind = 2; // site top-k
                let (site, _) = sites[rng.below(sites.len())];
                server.top_k_for_site(site, SITE_K).expect("site top_k").0
            }
            75..=89 => {
                kind = 3; // co-sharded compare
                let (_, docs) = &sites[rng.below(sites.len())];
                server.compare(docs[0], docs[1]).expect("compare").0
            }
            _ => {
                kind = 4; // cross-shard top-k (fan-out on both phases)
                server.top_k(TOP_K).expect("top_k").0
            }
        };
        let service_ns = issued.elapsed().as_nanos() as u64;
        assert!(
            published.binary_search(&epoch).is_ok(),
            "{name}: response claimed unpublished epoch {epoch}"
        );
        let during_swap = swap_before || swap_flag.load(Ordering::SeqCst);
        // Lindley recursion: the query starts when it arrives or when
        // the previous one departs, whichever is later; its latency is
        // queueing delay plus its own measured service time.
        depart_ns = arrival_ns.max(depart_ns) + service_ns;
        samples[kind].push((depart_ns - arrival_ns, during_swap));
        progress.store(i + 1, Ordering::SeqCst);
    }
    let wall = start.elapsed();
    publisher.join().expect("publisher panicked");

    let stats = server.stats();
    assert_eq!(
        stats.publishes as usize,
        snaps.len() - 1,
        "{name}: publisher fell behind its snapshot sequence"
    );
    PhaseResult {
        name,
        samples,
        backlog_clamps,
        max_lag,
        wall,
        direct_hits: stats.direct_hits,
        fanout_queries: stats.fanout_queries,
        gate_escalations: stats.gate_escalations,
        publishes: stats.publishes,
    }
}

fn print_phase(r: &PhaseResult) {
    println!(
        "\n[{}] wall {:.2?}, {} publishes, direct {} / fanout {}, \
         {} backlog clamps (max lag {:.1?}), {} gate escalations",
        r.name,
        r.wall,
        r.publishes,
        r.direct_hits,
        r.fanout_queries,
        r.backlog_clamps,
        r.max_lag,
        r.gate_escalations,
    );
    println!(
        "{:>12} {:>7} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "kind", "n", "p50", "p90", "p99", "p999", "swap n/p99"
    );
    for (k, (kind_name, _)) in KINDS.iter().enumerate() {
        let mut ns: Vec<u64> = r.samples[k].iter().map(|&(ns, _)| ns).collect();
        ns.sort_unstable();
        let mut swap_ns: Vec<u64> = r.samples[k]
            .iter()
            .filter(|&&(_, during)| during)
            .map(|&(ns, _)| ns)
            .collect();
        swap_ns.sort_unstable();
        let us = |v: u64| v as f64 / 1e3;
        println!(
            "{:>12} {:>7} {:>8.1}u {:>8.1}u {:>8.1}u {:>8.1}u {:>4}/{:.1}u",
            kind_name,
            ns.len(),
            us(pctl(&ns, 0.50)),
            us(pctl(&ns, 0.90)),
            us(pctl(&ns, 0.99)),
            us(pctl(&ns, 0.999)),
            swap_ns.len(),
            us(pctl(&swap_ns, 0.99)),
        );
    }
}

fn phase_json(r: &PhaseResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "    \"{}\": {{", r.name);
    let _ = writeln!(out, "      \"wall_ms\": {:.3},", r.wall.as_secs_f64() * 1e3);
    let _ = writeln!(out, "      \"publishes\": {},", r.publishes);
    let _ = writeln!(out, "      \"direct_hits\": {},", r.direct_hits);
    let _ = writeln!(out, "      \"fanout_queries\": {},", r.fanout_queries);
    let _ = writeln!(out, "      \"gate_escalations\": {},", r.gate_escalations);
    let _ = writeln!(out, "      \"backlog_clamps\": {},", r.backlog_clamps);
    let _ = writeln!(
        out,
        "      \"max_lag_ms\": {:.3},",
        r.max_lag.as_secs_f64() * 1e3
    );
    let _ = writeln!(out, "      \"kinds\": {{");
    for (k, (kind_name, point)) in KINDS.iter().enumerate() {
        let mut ns: Vec<u64> = r.samples[k].iter().map(|&(ns, _)| ns).collect();
        ns.sort_unstable();
        let swap_n = r.samples[k].iter().filter(|&&(_, d)| d).count();
        let us = |q: f64| pctl(&ns, q) as f64 / 1e3;
        let _ = write!(
            out,
            "        \"{}\": {{\"n\": {}, \"point_path\": {}, \
             \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \
             \"p999_us\": {:.1}, \"during_swap_n\": {}}}",
            kind_name,
            ns.len(),
            point,
            us(0.50),
            us(0.90),
            us(0.99),
            us(0.999),
            swap_n,
        );
        out.push_str(if k + 1 == N_KINDS { "\n" } else { ",\n" });
    }
    let _ = writeln!(out, "      }}");
    let _ = write!(out, "    }}");
    out
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The full-run rate is chosen to *load* a small host: per-query the
    // mpsc hop costs two scheduler round-trips, and at this arrival rate
    // that service-time gap compounds into real queueing — the tail
    // difference the open loop exists to expose. Smoke stays light so CI
    // only checks the machinery.
    let (rate_hz, arrivals, n_pubs, n_shards) = if smoke {
        (1_500.0, 1_200usize, 2usize, 4usize)
    } else {
        (25_000.0, 150_000usize, 12usize, 8usize)
    };

    let mut cfg = CampusWebConfig::paper_scale();
    cfg.spam_farms.clear();
    cfg.seed = 23;
    if smoke {
        cfg.total_docs = 2_000;
        cfg.n_sites = 40;
    } else {
        cfg.total_docs = 20_000;
        cfg.n_sites = 200;
    }
    let base = cfg.generate()?;

    section(&format!(
        "Open-loop latency: {} docs, {} sites; {} shards, {:.0} arrivals/s x {} \
         ({} swaps per phase, backlog cap {:?})",
        base.n_docs(),
        base.n_sites(),
        n_shards,
        rate_hz,
        arrivals,
        n_pubs,
        BACKLOG_CAP,
    ));

    // One ranked snapshot sequence, shared by both phases: the engine
    // work happens once, and the phases differ only in the read path.
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .damping(0.85)
        .tolerance(1e-10)
        .build()?;
    let (result, warmup) = timed(|| engine.rank(&base).map(|_| ()));
    result?;
    println!("base rank (cold): {warmup:.2?}");
    let mut snaps = vec![engine.snapshot()?];
    let mut current = base.clone();
    for step in 0..n_pubs {
        let delta = local_delta(&current, step);
        let (mutated, _) = current.apply(&delta)?;
        engine.apply_delta(&delta)?;
        snaps.push(engine.snapshot()?);
        current = mutated;
    }

    let seed = 0x10_AD;
    let direct = run_phase(
        "direct", true, &base, &snaps, n_shards, rate_hz, arrivals, seed,
    );
    print_phase(&direct);
    let mpsc = run_phase(
        "mpsc", false, &base, &snaps, n_shards, rate_hz, arrivals, seed,
    );
    print_phase(&mpsc);

    // The witnesses: the direct phase answered its point queries on the
    // caller's thread; the mpsc phase hopped every query to a worker.
    assert!(
        direct.direct_hits > 0,
        "direct phase never took the direct path"
    );
    assert_eq!(mpsc.direct_hits, 0, "compat toggle leaked direct reads");

    let direct_point = direct.point_ns_sorted();
    let mpsc_point = mpsc.point_ns_sorted();
    let direct_p99 = pctl(&direct_point, 0.99);
    let mpsc_p99 = pctl(&mpsc_point, 0.99);
    println!(
        "\npoint-query p99: direct {:.1}us vs mpsc {:.1}us ({:.2}x)",
        direct_p99 as f64 / 1e3,
        mpsc_p99 as f64 / 1e3,
        mpsc_p99 as f64 / direct_p99.max(1) as f64,
    );
    // The headline claim, asserted on the full run only: smoke samples
    // are too few for a stable p99 on a loaded CI core.
    if !smoke {
        assert!(
            direct_p99 < mpsc_p99,
            "direct point p99 ({direct_p99}ns) is not below mpsc p99 ({mpsc_p99}ns)"
        );
    }

    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"exp_latency\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"docs\": {},", base.n_docs());
    let _ = writeln!(json, "  \"sites\": {},", base.n_sites());
    let _ = writeln!(json, "  \"n_shards\": {n_shards},");
    let _ = writeln!(json, "  \"arrival_rate_hz\": {rate_hz},");
    let _ = writeln!(json, "  \"arrivals_per_phase\": {arrivals},");
    let _ = writeln!(json, "  \"swaps_per_phase\": {n_pubs},");
    let _ = writeln!(json, "  \"backlog_cap_ms\": {},", BACKLOG_CAP.as_millis());
    let _ = writeln!(json, "  \"phases\": {{");
    let _ = writeln!(json, "{},", phase_json(&direct));
    let _ = writeln!(json, "{}", phase_json(&mpsc));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"point_p99_us\": {{\"direct\": {:.1}, \"mpsc\": {:.1}}}",
        direct_p99 as f64 / 1e3,
        mpsc_p99 as f64 / 1e3,
    );
    json.push_str("}\n");

    let out_path = if smoke { SMOKE_OUT_PATH } else { OUT_PATH };
    std::fs::write(out_path, json)?;
    println!("wrote {out_path}");
    Ok(())
}
