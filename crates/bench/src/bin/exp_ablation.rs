//! Experiments E8–E10: baselines and design-choice ablations.
//!
//! * E8 — BlockRank contrast (Section 3.2's discussion): rank agreement
//!   with the layered method and the serialized dependency structure;
//! * E9 — personalization at both layers (summary numbers; see also the
//!   `personalized_ranking` example);
//! * E10 — SiteGraph construction ablations: SiteLink weighting scheme,
//!   self-loop policy, and the damping/α sweep.
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_ablation`

use lmm_bench::{experiment_engine, section, timed};
use lmm_core::personalize::PersonalizationBuilder;
use lmm_core::siterank::SiteLayerMethod;
use lmm_engine::{BackendSpec, RankEngine};
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::sitegraph::{SiteGraphOptions, SiteLinkWeighting};
use lmm_graph::SiteId;
use lmm_rank::blockrank::blockrank;
use lmm_rank::hits::{hits, HitsConfig};
use lmm_rank::metrics;
use lmm_rank::pagerank::PageRankConfig;

const LAYERED: BackendSpec = BackendSpec::Layered {
    site_layer: SiteLayerMethod::PageRank,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = CampusWebConfig::paper_scale();
    cfg.total_docs = 12_000; // ablations sweep many variants; keep each cheap
    cfg.spam_farms[0].n_pages = 1_000;
    cfg.spam_farms[1].n_pages = 600;
    let graph = cfg.generate()?;
    let spam = graph.spam_labels();
    let baseline = experiment_engine(LAYERED)?.rank(&graph)?.clone();
    let flat = experiment_engine(BackendSpec::FlatPageRank)?
        .rank(&graph)?
        .clone();

    section("E8: BlockRank vs the layered method");
    let site_labels: Vec<usize> = graph.site_assignments().iter().map(|s| s.index()).collect();
    let (block, t_block) = timed(|| {
        blockrank(
            &graph.adjacency().clone(),
            &site_labels,
            graph.n_sites(),
            &PageRankConfig::default(),
        )
    });
    let block = block?;
    println!("  BlockRank total time (serialized stages): {t_block:.2?}");
    println!(
        "  warm-started global refinement iterations: {}",
        block.warm_iterations
    );
    println!(
        "  tau(BlockRank approx, flat PageRank)  = {:.3}",
        metrics::kendall_tau(&block.approximation, &flat.ranking)
    );
    println!(
        "  tau(BlockRank approx, layered method) = {:.3}",
        metrics::kendall_tau(&block.approximation, &baseline.ranking)
    );
    println!(
        "  spam@15: BlockRank approx {:.0}%, refined {:.0}%, layered {:.0}%",
        100.0 * metrics::labeled_share_at_k(&block.approximation, &spam, 15),
        100.0 * metrics::labeled_share_at_k(&block.refined.ranking, &spam, 15),
        100.0 * metrics::labeled_share_at_k(&baseline.ranking, &spam, 15),
    );
    println!("  note: BlockRank's block weights need the local ranks first (serial);");
    println!("        the LMM SiteGraph uses raw link counts (parallel).");

    section("E8b: HITS baseline (authorities)");
    let h = hits(graph.adjacency(), &HitsConfig::default())?;
    println!(
        "  spam@15 HITS authorities: {:.0}% (TKC effect; cf. the paper's HITS critique)",
        100.0 * metrics::labeled_share_at_k(&h.authorities, &spam, 15)
    );

    section("E9: personalization summary (site layer)");
    for (label, boost_site) in [("physics dept", 10usize), ("tail dept", 150usize)] {
        let v = PersonalizationBuilder::new(graph.n_sites())
            .baseline(0.4)
            .boost(boost_site, 1.0)
            .build()?;
        let mut engine = RankEngine::builder()
            .backend(LAYERED)
            .damping(0.85)
            .tolerance(1e-10)
            .site_personalization(v)
            .build()?;
        engine.rank(&graph)?;
        let neutral_site = baseline
            .site_score(SiteId(boost_site))?
            .expect("layered has a site layer");
        let boosted_site = engine
            .site_score(SiteId(boost_site))?
            .expect("layered has a site layer");
        println!(
            "  boost {label:<14} site rank {:.4} -> {:.4}; tau vs neutral {:.3}",
            neutral_site,
            boosted_site,
            metrics::kendall_tau(&baseline.ranking, &engine.outcome()?.ranking)
        );
    }

    section("E10a: SiteLink weighting ablation");
    println!(
        "{:>12} {:>14} {:>12} {:>12}",
        "weighting", "tau vs count", "spam@15", "top15 ovl"
    );
    for (name, weighting) in [
        ("count", SiteLinkWeighting::LinkCount),
        ("uniform", SiteLinkWeighting::Uniform),
        ("log", SiteLinkWeighting::LogCount),
    ] {
        let mut engine = RankEngine::builder()
            .backend(LAYERED)
            .damping(0.85)
            .tolerance(1e-10)
            .site_options(SiteGraphOptions {
                weighting,
                ..SiteGraphOptions::default()
            })
            .build()?;
        let r = engine.rank(&graph)?;
        println!(
            "{name:>12} {:>14.3} {:>11.0}% {:>11.0}%",
            metrics::kendall_tau(&baseline.ranking, &r.ranking),
            100.0 * metrics::labeled_share_at_k(&r.ranking, &spam, 15),
            100.0 * metrics::top_k_overlap(&baseline.ranking, &r.ranking, 15),
        );
    }

    section("E10b: self-loop policy");
    for include in [false, true] {
        let mut engine = RankEngine::builder()
            .backend(LAYERED)
            .damping(0.85)
            .tolerance(1e-10)
            .site_options(SiteGraphOptions {
                include_self_loops: include,
                ..SiteGraphOptions::default()
            })
            .build()?;
        let r = engine.rank(&graph)?;
        println!(
            "  self-loops {:<5} tau vs default {:.3}, spam@15 {:.0}%",
            include,
            metrics::kendall_tau(&baseline.ranking, &r.ranking),
            100.0 * metrics::labeled_share_at_k(&r.ranking, &spam, 15)
        );
    }

    section("E10c: damping sweep (both layers)");
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "damping", "PR spam@15", "LMM spam@15", "tau(PR,LMM)"
    );
    for f in [0.5, 0.7, 0.85, 0.95] {
        let mut flat_engine = RankEngine::builder()
            .backend(BackendSpec::FlatPageRank)
            .damping(f)
            .tolerance(1e-10)
            .build()?;
        let fr = flat_engine.rank(&graph)?.clone();
        let mut layered_engine = RankEngine::builder()
            .backend(LAYERED)
            .damping(f)
            .tolerance(1e-10)
            .build()?;
        let lr = layered_engine.rank(&graph)?;
        println!(
            "{f:>8} {:>13.0}% {:>13.0}% {:>12.3}",
            100.0 * metrics::labeled_share_at_k(&fr.ranking, &spam, 15),
            100.0 * metrics::labeled_share_at_k(&lr.ranking, &spam, 15),
            metrics::kendall_tau(&fr.ranking, &lr.ranking)
        );
    }
    Ok(())
}
