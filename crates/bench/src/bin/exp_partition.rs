//! Experiment E5: the Partition Theorem at scale.
//!
//! Sweeps random Layered Markov Models of growing size and verifies that
//! the decentralized Layered Method (Approach 4) reproduces the global
//! stationary distribution (Approach 2) to numerical precision, as
//! Theorem 2 asserts.
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_partition`

use lmm_bench::{experiment_engine, section};
use lmm_core::approaches::LmmParams;
use lmm_core::synth::{random_model, random_sparse_model};
use lmm_core::verify_partition_theorem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    section("Dense random models (positive Y and U_I)");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "phases", "states", "|A2-A4|_inf", "|A2-A4|_1", "same order", "iters A2"
    );
    for (n_phases, min_sub, max_sub, seed) in [
        (3usize, 2usize, 5usize, 1u64),
        (8, 4, 12, 2),
        (16, 8, 24, 3),
        (32, 16, 48, 4),
        (64, 16, 64, 5),
    ] {
        let model = random_model(n_phases, min_sub, max_sub, seed);
        let check = verify_partition_theorem(&model, &LmmParams::default())?;
        println!(
            "{:>8} {:>10} {:>12.2e} {:>12.2e} {:>12} {:>10}",
            n_phases,
            check.states,
            check.linf,
            check.l1,
            check.same_order,
            check.central_iterations
        );
        assert!(check.linf < 1e-9);
    }

    section("Sparse random models (web-like sparsity)");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12}",
        "phases", "states", "|A2-A4|_inf", "same order", "iters A2"
    );
    for (n_phases, sub, seed) in [(16usize, 100usize, 7u64), (32, 250, 8), (64, 500, 9)] {
        let model = random_sparse_model(n_phases, sub, 6, seed);
        let check = verify_partition_theorem(&model, &LmmParams::default())?;
        println!(
            "{:>8} {:>10} {:>12.2e} {:>12} {:>12}",
            n_phases, check.states, check.linf, check.same_order, check.central_iterations
        );
        assert!(check.linf < 1e-9);
    }

    section("Alpha sweep on one model (64 phases, dense)");
    let model = random_model(64, 8, 24, 11);
    println!("{:>8} {:>14} {:>12}", "alpha", "|A2-A4|_inf", "same order");
    for alpha in [0.5, 0.7, 0.85, 0.95, 0.99] {
        let check = verify_partition_theorem(&model, &LmmParams::with_factor(alpha))?;
        println!("{alpha:>8} {:>14.2e} {:>12}", check.linf, check.same_order);
        assert!(check.linf < 1e-9);
    }

    section("Web instantiation through the unified RankEngine");
    println!(
        "{:>10} {:>8} {:>14} {:>14}",
        "docs", "sites", "|A2-A4|_inf", "top-20 overlap"
    );
    for (total_docs, n_sites, seed) in [(600usize, 12usize, 1u64), (2_000, 30, 2), (6_000, 60, 3)] {
        let mut cfg = lmm_graph::generator::CampusWebConfig::small();
        cfg.total_docs = total_docs;
        cfg.n_sites = n_sites;
        cfg.seed = seed;
        cfg.spam_farms.truncate(1);
        cfg.spam_farms[0].host_site = n_sites / 2;
        cfg.spam_farms[0].n_pages = total_docs / 20;
        let graph = cfg.generate()?;
        let mut a2 = experiment_engine(lmm_engine::BackendSpec::CentralizedStationary)?;
        a2.rank(&graph)?;
        let mut a4 = experiment_engine(lmm_engine::BackendSpec::Layered {
            site_layer: lmm_core::siterank::SiteLayerMethod::Stationary,
        })?;
        a4.rank(&graph)?;
        let cmp = a2.compare(a4.outcome()?, 20)?;
        println!(
            "{:>10} {:>8} {:>14.2e} {:>13.0}%",
            graph.n_docs(),
            graph.n_sites(),
            cmp.linf,
            100.0 * cmp.top_k_overlap
        );
        assert!(cmp.linf < 1e-8);
    }

    println!("\nTheorem 2 holds numerically across all sweeps.");
    Ok(())
}
