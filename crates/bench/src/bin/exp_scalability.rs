//! Experiment E6: the Section 2.3.3 complexity claim.
//!
//! "The aggregation of those vectors where only O(N) multiplications are
//! necessary. In contrast, previous methods require a large number of
//! multiplications of two N x N matrices until the resulting vector
//! converges."
//!
//! The sweep times, for growing total state counts:
//!
//! * Approach 1/2 on the **explicit** `W` (materialize + power iterate) —
//!   the centralized straw man;
//! * Approach 2 through the **implicit factored operator** (no `W`);
//! * Approach 4, the **Layered Method** (per-phase PageRanks + one phase
//!   chain + O(N) composition) — reported both as total sequential work
//!   and as the critical path when phases compute in parallel.
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_scalability`

use std::time::Duration;

use lmm_bench::{experiment_engine, section, timed};
use lmm_core::approaches::{compute, LmmParams, RankApproach};
use lmm_core::global::{global_transition_matrix, phase_gatekeeper_distributions};
use lmm_core::synth::random_sparse_model;
use lmm_linalg::{power::stationary_distribution, vec_ops};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    section("Centralized vs layered computation time");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>14} {:>14}",
        "phases", "states", "explicit W", "implicit A2", "layered A4", "nnz(W)"
    );
    let params = LmmParams::default();
    // Materializing W costs nnz(W) = states^2 (its block rows are dense for
    // a positive Y): past ~10k states that is seconds-to-minutes of work and
    // tens of GB — the quadratic wall the factored operator removes. Skip
    // the explicit run beyond that.
    const EXPLICIT_CAP: usize = 10_000;
    for (n_phases, sub, seed) in [
        (8usize, 50usize, 1u64),
        (16, 100, 2),
        (32, 200, 3),
        (64, 400, 4),
        (128, 400, 5),
    ] {
        let model = random_sparse_model(n_phases, sub, 6, seed);
        let dists = phase_gatekeeper_distributions(&model, params.alpha, &params.power)?;
        let states = model.total_states();

        let explicit_cell = if states <= EXPLICIT_CAP {
            let (explicit, t_explicit) = timed(|| -> Result<usize, Box<dyn std::error::Error>> {
                let w = global_transition_matrix(&model, &dists)?;
                let (pi, _) = stationary_distribution(&w, &params.power)?;
                std::hint::black_box(pi);
                Ok(w.nnz())
            });
            let nnz_w = explicit?;
            (format!("{t_explicit:.2?}"), nnz_w.to_string())
        } else {
            // states^2 entries would not fit in memory; report the size.
            ("skipped".to_string(), format!("{}", states * states))
        };

        let (a2, t_implicit) = timed(|| compute(&model, RankApproach::StationaryOfGlobal, &params));
        let a2 = a2?;
        let (a4, t_layered) = timed(|| compute(&model, RankApproach::Layered, &params));
        let a4 = a4?;
        assert!(vec_ops::linf_diff(a2.scores(), a4.scores()) < 1e-9);

        println!(
            "{:>8} {:>8} {:>14} {:>14.2?} {:>14.2?} {:>14}",
            n_phases, states, explicit_cell.0, t_implicit, t_layered, explicit_cell.1
        );
    }

    section("Work decomposition of the Layered Method (64 phases x 400 states)");
    let model = random_sparse_model(64, 400, 6, 4);
    let (dists, t_locals) =
        timed(|| phase_gatekeeper_distributions(&model, params.alpha, &params.power));
    let dists = dists?;
    let (site, t_site) =
        timed(|| stationary_distribution(model.phase_matrix().matrix(), &params.power));
    let (site_vec, _) = site?;
    let (_, t_compose) = timed(|| {
        let mut scores = Vec::with_capacity(model.total_states());
        for (i, dist) in dists.iter().enumerate() {
            scores.extend(dist.scores().iter().map(|&p| site_vec[i] * p));
        }
        std::hint::black_box(scores);
    });
    let per_phase = t_locals / 64;
    println!("  all local gatekeeper PageRanks (sequential): {t_locals:.2?}");
    println!("  -> per phase (parallel critical path):       {per_phase:.2?}");
    println!("  phase chain stationary vector:               {t_site:.2?}");
    println!("  O(N) composition:                            {t_compose:.2?}");
    let critical: Duration = per_phase + t_site + t_compose;
    println!("  parallel critical path total:                {critical:.2?}");

    section("Engine backends on growing campus webs (wall time)");
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>14}",
        "docs", "sites", "flat", "centralized", "layered"
    );
    for (total_docs, n_sites, seed) in
        [(1_000usize, 20usize, 1u64), (4_000, 40, 2), (12_000, 80, 3)]
    {
        let mut cfg = lmm_graph::generator::CampusWebConfig::small();
        cfg.total_docs = total_docs;
        cfg.n_sites = n_sites;
        cfg.seed = seed;
        cfg.spam_farms.clear();
        let graph = cfg.generate()?;
        let mut row = Vec::new();
        for backend in [
            lmm_engine::BackendSpec::FlatPageRank,
            lmm_engine::BackendSpec::CentralizedStationary,
            lmm_engine::BackendSpec::Layered {
                site_layer: lmm_core::siterank::SiteLayerMethod::Stationary,
            },
        ] {
            let mut engine = experiment_engine(backend)?;
            let (outcome, wall) = timed(|| engine.rank(&graph).cloned());
            let _ = outcome?;
            row.push(wall);
        }
        println!(
            "{:>10} {:>8} {:>14.2?} {:>14.2?} {:>14.2?}",
            graph.n_docs(),
            graph.n_sites(),
            row[0],
            row[1],
            row[2]
        );
    }
    Ok(())
}
