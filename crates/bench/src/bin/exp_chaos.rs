//! Experiment PR7: the recovery half of the fabric under a seeded fault
//! schedule — chaos, but reproducible chaos.
//!
//! Stands up the full loopback cluster (controller, four [`ShardNode`]s
//! over eight shards, a [`ClusterClient`]) next to the in-process
//! [`ShardedServer`] mirror, then gives **every** role a deterministic
//! [`FaultPlan`]: nodes drop, delay, and sever frames in both directions
//! (one of them rides a periodic bidirectional partition window), the
//! client's own sends are lossy too. Over the churn epochs the schedule
//! also kills two nodes outright at fixed epochs and *restarts* each
//! under its prior id a few epochs later. Five properties are asserted,
//! not just measured:
//!
//! * **zero wrong-epoch responses** — every probe answered during a
//!   publish, a failover window, or a rejoin catch-up is wholly at the
//!   pre-swap or post-swap epoch, bit-for-bit;
//! * **only-retriable client errors** — faults surface to the client as
//!   [`ClusterError::is_retriable`] errors, never as wrong answers or
//!   non-retriable failures;
//! * **bitwise parity at every quiesce** — after each publish settles,
//!   the cluster's full query surface equals the in-process tier's,
//!   IEEE-754 bit patterns included;
//! * **rank-mass conservation** — every epoch's snapshot scores sum to
//!   1 within 1e-9, churn and recovery notwithstanding;
//! * **recovery round-trips** — a killed node's shards fail over (rank
//!   epoch pinned), and after restart the node is re-admitted under its
//!   prior id and ends up serving *exactly* its original shard set
//!   again, with the rank epoch still untouched; retry counts stay
//!   bounded throughout (no retry storms).
//!
//! Writes `BENCH_pr7.json` (`--smoke` writes `BENCH_pr7_smoke.json` for
//! CI so the committed measurements are never clobbered). `--seed N`
//! reseeds every fault stream for a different — equally reproducible —
//! schedule.
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_chaos`

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use lmm_bench::{section, timed};
use lmm_cluster::{
    ClientConfig, ClusterClient, ClusterController, ClusterError, ClusterPublishReport,
    ControllerConfig, FaultPlan, NodeConfig, RetryPolicy, ShardNode,
};
use lmm_engine::{BackendSpec, RankEngine, RankSnapshot};
use lmm_graph::delta::GraphDelta;
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::sharding::ShardMap;
use lmm_graph::{DocGraph, DocId, SiteId};
use lmm_serve::{ServeConfig, ShardedServer};

const OUT_PATH: &str = "BENCH_pr7.json";
const SMOKE_OUT_PATH: &str = "BENCH_pr7_smoke.json";
const DEFAULT_SEED: u64 = 0xC7A05;
const N_NODES: usize = 4;
const N_SHARDS: usize = 8;
const TOP_K: usize = 10;
const PROBES_PER_SWAP: usize = 20;

struct EpochRecord {
    epoch: usize,
    kind: &'static str,
    cepoch: u64,
    rank_epoch: u64,
    publish: Duration,
    attempts: usize,
    probe_old: usize,
    probe_new: usize,
    probe_retriable: usize,
    mass_error: f64,
}

struct ChaosEvent {
    epoch: usize,
    kind: &'static str,
    node: u64,
    wall: Duration,
    cepoch_after: u64,
    probes_ok: u64,
    probes_retriable: u64,
}

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }
    fn next(&mut self, m: usize) -> usize {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 33) as usize % m
    }
}

/// The ambient fault plan the `i`-th node serves behind: lossy and slow
/// in both directions, with node 1 additionally riding a periodic
/// bidirectional partition window.
fn node_plan(i: usize, seed: u64) -> FaultPlan {
    FaultPlan {
        drop_per_mille: 6,
        delay_per_mille: 10,
        delay: Duration::from_millis(2),
        disconnect_per_mille: 2,
        recv_drop_per_mille: 4,
        recv_delay_per_mille: 8,
        partition_period: if i == 1 { 96 } else { 0 },
        partition_len: if i == 1 { 6 } else { 0 },
        ..FaultPlan::quiet(seed ^ (i as u64).rotate_left(24))
    }
}

fn node_config(i: usize, seed: u64) -> NodeConfig {
    NodeConfig {
        heap_k: 128,
        fault: Some(node_plan(i, seed)),
        ..NodeConfig::default()
    }
}

/// Repeats a cluster call through transient (retriable) failures — the
/// quiesce-time harness stance: faults may slow an answer down, never
/// change it. Anything non-retriable fails the experiment.
fn patient<T>(mut op: impl FnMut() -> Result<T, ClusterError>) -> T {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match op() {
            Ok(out) => return out,
            Err(err) if err.is_retriable() => {
                assert!(Instant::now() < deadline, "retriable error never cleared");
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(err) => panic!("non-retriable under chaos: {err}"),
        }
    }
}

/// Intra-site rewire plus growth: only the touched shards rebuild.
fn local_delta(graph: &DocGraph, step: usize) -> GraphDelta {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    let mut site = (step * 7 + 3) % n_sites;
    while graph.site_size(SiteId(site)) < 3 {
        site = (site + 1) % n_sites;
    }
    let docs = graph.docs_of_site(SiteId(site));
    delta.remove_link(docs[0], docs[1]).expect("in range");
    delta.add_link(docs[1], docs[2]).expect("in range");
    delta.add_link(docs[2], docs[0]).expect("in range");
    let mut target = (step * 5 + 1) % n_sites;
    while graph.site_size(SiteId(target)) < 1 {
        target = (target + 1) % n_sites;
    }
    let target = SiteId(target);
    let root = graph.docs_of_site(target)[0];
    let p = delta
        .add_page(target, &format!("http://chaos-grow-{step}.page/"))
        .expect("existing site");
    delta.add_link(root, p).expect("in range");
    delta.add_link(p, root).expect("in range");
    delta
}

/// Cross link (plus a new site every 2nd time): stales the site layer and
/// forces a full rebuild publish — maximum wire fan-out under faults.
fn global_delta(graph: &DocGraph, step: usize) -> GraphDelta {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    let mut site_a = (step * 11 + 2) % n_sites;
    while graph.site_size(SiteId(site_a)) < 1 {
        site_a = (site_a + 1) % n_sites;
    }
    let mut site_b = (step * 13 + 5) % n_sites;
    while site_b == site_a || graph.site_size(SiteId(site_b)) < 1 {
        site_b = (site_b + 1) % n_sites;
    }
    let a = graph.docs_of_site(SiteId(site_a))[0];
    let b = graph.docs_of_site(SiteId(site_b))[0];
    delta.add_link(a, b).expect("in range");
    if step.is_multiple_of(2) {
        let s = delta.add_site(&format!("chaos-{step}.example"));
        let mut pages = Vec::new();
        for i in 0..3 {
            pages.push(
                delta
                    .add_page(s, &format!("http://chaos-{step}.example/{i}"))
                    .expect("new site"),
            );
        }
        for w in pages.windows(2) {
            delta.add_link(w[0], w[1]).expect("in range");
        }
        delta.add_link(pages[2], pages[0]).expect("in range");
        delta.add_link(a, pages[0]).expect("in range");
        delta.add_link(pages[0], a).expect("in range");
    }
    delta
}

/// Whole-site retirement plus a page removal elsewhere: the publish
/// rebuilds the named shards and refreshes every other one.
fn removal_delta(graph: &DocGraph, step: usize) -> GraphDelta {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    let mut site = (step * 13 + 5) % n_sites;
    while graph.site_size(SiteId(site)) < 4 {
        site = (site + 1) % n_sites;
    }
    delta.remove_site(SiteId(site)).expect("live site");
    let mut shrink = (step * 17 + 11) % n_sites;
    while shrink == site || graph.site_size(SiteId(shrink)) < 4 {
        shrink = (shrink + 1) % n_sites;
    }
    let docs = graph.docs_of_site(SiteId(shrink));
    delta
        .remove_page(docs[docs.len() - 1])
        .expect("populous site");
    delta
}

/// Full-surface bitwise parity between the cluster and the in-process
/// tier at one quiesce point, patiently riding out injected faults.
fn assert_parity(
    client: &ClusterClient,
    server: &ShardedServer,
    snapshot: &RankSnapshot,
    rng: &mut XorShift,
) {
    let want_epoch = snapshot.epoch();

    let (le, local_top) = server.top_k(TOP_K).expect("local top_k");
    let (re, remote_top) = patient(|| client.top_k(TOP_K));
    assert_eq!((le, re), (want_epoch, want_epoch), "top_k epoch drift");
    assert_eq!(local_top.len(), remote_top.len());
    for (l, r) in local_top.iter().zip(remote_top.iter()) {
        assert_eq!(l.0, r.0, "top_k doc drift");
        assert_eq!(
            l.1.to_bits(),
            r.1.to_bits(),
            "top_k score drift at {:?}",
            l.0
        );
    }

    let live: Vec<DocId> = (0..snapshot.n_docs())
        .map(DocId)
        .filter(|&d| snapshot.is_live_doc(d))
        .collect();
    let batch: Vec<DocId> = (0..64.min(live.len()))
        .map(|_| live[rng.next(live.len())])
        .collect();
    let (le, local_scores) = server.score_batch(&batch).expect("local batch");
    let (re, remote_scores) = patient(|| client.score_batch(&batch));
    assert_eq!((le, re), (want_epoch, want_epoch), "batch epoch drift");
    for (i, (l, r)) in local_scores.iter().zip(remote_scores.iter()).enumerate() {
        assert_eq!(l.to_bits(), r.to_bits(), "score drift at {:?}", batch[i]);
    }

    for _ in 0..8 {
        let (a, b) = (live[rng.next(live.len())], live[rng.next(live.len())]);
        let (le, local_ord) = server.compare(a, b).expect("local compare");
        let (re, remote_ord) = patient(|| client.compare(a, b));
        assert_eq!((le, re), (want_epoch, want_epoch), "compare epoch drift");
        assert_eq!(local_ord, remote_ord, "compare drift {a:?} vs {b:?}");
    }
}

/// The shard ids `node` currently serves, read (lossily) over the wire.
/// Empty when the stats probe itself was eaten by a fault — callers loop.
fn shards_of(controller: &ClusterController, node: u64) -> BTreeSet<u64> {
    controller
        .stats()
        .nodes
        .iter()
        .find(|n| n.node == node)
        .and_then(|n| n.wire.as_ref())
        .map(|w| w.shard_docs.iter().map(|&(s, _)| s).collect())
        .unwrap_or_default()
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map_or(Ok(DEFAULT_SEED), |s| s.parse::<u64>())?;
    let epochs = if smoke { 8 } else { 20 };
    // The kill/restart schedule: two full down-and-back cycles, epochs
    // apart so churn keeps flowing while a node is dark.
    let kill_at = [epochs / 5, 3 * epochs / 5];
    let rejoin_at = [kill_at[0] + 2, kill_at[1] + 3];
    assert!(rejoin_at[0] < kill_at[1] && rejoin_at[1] < epochs);

    let mut cfg = CampusWebConfig::paper_scale();
    cfg.spam_farms.clear();
    cfg.seed = 23;
    if smoke {
        cfg.total_docs = 2_000;
        cfg.n_sites = 40;
    } else {
        cfg.total_docs = 20_000;
        cfg.n_sites = 200;
    }
    let base = cfg.generate()?;

    section(&format!(
        "Chaos schedule over the shard fabric: {} docs, {} sites; {N_NODES} nodes x {N_SHARDS} shards, \
         {epochs} churn epochs, kills at {kill_at:?}, rejoins at {rejoin_at:?}, seed {seed:#x}",
        base.n_docs(),
        base.n_sites(),
    ));

    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .damping(0.85)
        .tolerance(1e-10)
        .build()?;
    engine.rank(&base)?;

    let map = ShardMap::balanced(&base, N_SHARDS)?;
    let controller = ClusterController::start(
        map.clone(),
        ControllerConfig {
            heartbeat_interval: Duration::from_millis(50),
            // Generous miss budget: the ambient drop rates make a missed
            // Pong routine, and node 1's partition window blacks out
            // three pings back-to-back. Only sustained silence may evict.
            miss_limit: 6,
            io_timeout: Duration::from_millis(800),
            auto_failover: true,
            retry: RetryPolicy {
                base: Duration::from_millis(5),
                max_backoff: Duration::from_millis(100),
                max_attempts: 5,
                ..RetryPolicy::default()
            },
            fault: None,
        },
    )?;
    let mut nodes: Vec<ShardNode> = (0..N_NODES)
        .map(|i| ShardNode::start(controller.addr(), node_config(i, seed)))
        .collect::<Result<_, _>>()?;
    controller.wait_for_nodes(N_NODES, Duration::from_secs(10))?;

    let snapshot = engine.snapshot()?;
    controller.publish(&snapshot)?;
    let server = ShardedServer::start(
        map,
        &snapshot,
        ServeConfig {
            heap_k: 128,
            max_gather_retries: 4,
            direct_reads: true,
        },
    )?;
    let client = ClusterClient::new(
        controller.addr(),
        ClientConfig {
            io_timeout: Duration::from_millis(500),
            fault: Some(FaultPlan {
                drop_per_mille: 8,
                ..FaultPlan::quiet(seed ^ 0xC11E)
            }),
            ..ClientConfig::default()
        },
    );
    let mut parity_rng = XorShift::new(seed ^ 0x9E37_79B9);
    assert_parity(&client, &server, &snapshot, &mut parity_rng);

    let bench_start = Instant::now();
    let mut current = base;
    let mut records: Vec<EpochRecord> = Vec::new();
    let mut events: Vec<ChaosEvent> = Vec::new();
    // One node down at a time: its id, its shard set at time of death,
    // and the fault seed index its restart must reuse.
    let mut down: Option<(u64, BTreeSet<u64>, usize)> = None;
    println!(
        "{:>5} {:>8} {:>7} {:>6} {:>10} {:>9} {:>15} {:>10}",
        "epoch", "kind", "cepoch", "rank", "publish", "attempts", "probes o|n|r", "mass err"
    );
    for epoch in 0..epochs {
        let (delta, kind) = match epoch % 3 {
            2 => (global_delta(&current, epoch), "global"),
            1 => (removal_delta(&current, epoch), "removal"),
            _ => (local_delta(&current, epoch), "local"),
        };
        let (mutated, _) = current.apply(&delta)?;
        engine.apply_delta(&delta)?;
        current = mutated;
        let snapshot = engine.snapshot()?;
        let mass: f64 = snapshot.scores().iter().sum();
        let mass_error = (mass - 1.0).abs();
        assert!(
            mass_error < 1e-9,
            "epoch {epoch}: rank mass {mass} is not conserved"
        );
        let old_epoch = snapshot.epoch() - 1;
        let new_epoch = snapshot.epoch();
        let want_top = engine.top_k(TOP_K)?;
        let old_top = server.top_k(TOP_K)?.1;

        // Hammer the swap from a second, equally lossy client: every
        // answer must be wholly pre-swap or wholly post-swap, and every
        // error retriable — under faults, during a publish.
        let prober = {
            let controller_addr = controller.addr().to_string();
            let want_top = want_top.clone();
            let probe_fault = FaultPlan {
                drop_per_mille: 8,
                ..FaultPlan::quiet(seed ^ 0xF00D ^ (epoch as u64) << 20)
            };
            std::thread::spawn(move || {
                let probe_client = ClusterClient::new(
                    &controller_addr,
                    ClientConfig {
                        io_timeout: Duration::from_millis(500),
                        fault: Some(probe_fault),
                        ..ClientConfig::default()
                    },
                );
                let (mut old, mut new, mut retriable) = (0usize, 0usize, 0usize);
                for _ in 0..PROBES_PER_SWAP {
                    match probe_client.top_k(TOP_K) {
                        Ok((epoch, top)) => {
                            assert!(
                                epoch == old_epoch || epoch == new_epoch,
                                "probe answered from epoch {epoch}, swap is {old_epoch}->{new_epoch}"
                            );
                            let want = if epoch == old_epoch {
                                &old_top
                            } else {
                                &want_top
                            };
                            assert_eq!(top.len(), want.len(), "torn probe at epoch {epoch}");
                            for (a, b) in top.iter().zip(want.iter()) {
                                assert_eq!(a.0, b.0, "torn probe at epoch {epoch}");
                                assert_eq!(a.1.to_bits(), b.1.to_bits(), "torn probe bits");
                            }
                            if epoch == old_epoch {
                                old += 1;
                            } else {
                                new += 1;
                            }
                        }
                        Err(err) => {
                            assert!(err.is_retriable(), "non-retriable probe error: {err}");
                            retriable += 1;
                        }
                    }
                }
                (old, new, retriable)
            })
        };
        let (report, publish_wall) = timed(|| controller.publish(&snapshot));
        let report: ClusterPublishReport = report?;
        let (probe_old, probe_new, probe_retriable) =
            prober.join().expect("prober panicked (torn response?)");
        server.publish(&snapshot)?;

        assert_eq!(report.rank_epoch, new_epoch, "publish rank epoch drift");
        // Bounded retries at the publish layer: the budget is 5, and a
        // run that eats it all is a storm, not chaos tolerance.
        assert!(report.attempts <= 5, "publish retry storm: {report:?}");
        assert_parity(&client, &server, &snapshot, &mut parity_rng);

        println!(
            "{:>5} {:>8} {:>7} {:>6} {:>10.2?} {:>9} {:>9}|{}|{:<3} {:>10.1e}",
            epoch,
            kind,
            report.epoch,
            report.rank_epoch,
            publish_wall,
            report.attempts,
            probe_old,
            probe_new,
            probe_retriable,
            mass_error,
        );
        records.push(EpochRecord {
            epoch,
            kind,
            cepoch: report.epoch,
            rank_epoch: report.rank_epoch,
            publish: publish_wall,
            attempts: report.attempts,
            probe_old,
            probe_new,
            probe_retriable,
            mass_error,
        });

        if kill_at.contains(&epoch) {
            // Kill a node outright — no goodbye. Hammer the window until
            // the controller evicts and fails over, then verify the rank
            // epoch never moved.
            let victim = nodes.remove(0);
            let victim_id = victim.node_id();
            // The ownership read goes over the fault-injected wire, so a
            // single probe can come back empty without the victim owning
            // nothing — loop it like every other lossy stats read.
            let owned = {
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    let owned = shards_of(&controller, victim_id);
                    if !owned.is_empty() {
                        break owned;
                    }
                    assert!(Instant::now() < deadline, "victim owned nothing");
                    std::thread::sleep(Duration::from_millis(20));
                }
            };
            let fault_index = kill_at
                .iter()
                .position(|&k| k == epoch)
                .expect("kill epoch");
            let (cepoch_before, rank_now) = controller.epochs();
            println!("  >> killing node {victim_id} (cluster epoch {cepoch_before})");
            let kill_start = Instant::now();
            let killer = std::thread::spawn(move || victim.kill());
            let deadline = kill_start + Duration::from_secs(60);
            let (mut ok, mut retriable) = (0u64, 0u64);
            while controller.epochs().0 == cepoch_before || controller.n_nodes() != N_NODES - 1 {
                assert!(
                    Instant::now() < deadline,
                    "controller never evicted the dead node: n_nodes={}, epochs={:?}, stats={:?}",
                    controller.n_nodes(),
                    controller.epochs(),
                    controller.stats()
                );
                match client.top_k(TOP_K) {
                    Ok((e, top)) => {
                        assert_eq!(e, rank_now, "wrong-epoch response during failover");
                        assert_eq!(top.len(), want_top.len(), "torn failover response");
                        ok += 1;
                    }
                    Err(err) if err.is_retriable() => retriable += 1,
                    Err(err) => panic!("non-retriable during failover: {err}"),
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            let wall = kill_start.elapsed();
            killer.join().expect("node kill panicked");
            let (cepoch_after, rank_after) = controller.epochs();
            assert_eq!(rank_after, rank_now, "failover changed the ranking");
            println!(
                "  >> failover complete in {wall:.2?}: epoch {cepoch_before} -> {cepoch_after}, \
                 {ok} correct + {retriable} retriable during the window"
            );
            down = Some((victim_id, owned, fault_index));
            events.push(ChaosEvent {
                epoch,
                kind: "kill",
                node: victim_id,
                wall,
                cepoch_after,
                probes_ok: ok,
                probes_retriable: retriable,
            });
        }

        if rejoin_at.contains(&epoch) {
            // Restart the downed node under its prior id, with its prior
            // fault plan — recovery does not get a clean network. The
            // controller must re-admit it and hand back exactly the
            // shards it held when it died, without touching the ranking.
            let (victim_id, original, fault_index) = down.take().expect("no node is down");
            let (cepoch_before, rank_before) = controller.epochs();
            let restart_start = Instant::now();
            let returned = ShardNode::restart(
                controller.addr(),
                victim_id,
                node_config(fault_index, seed ^ 0x7E57),
            )?;
            assert_eq!(returned.node_id(), victim_id, "rejoin changed the id");
            let deadline = restart_start + Duration::from_secs(60);
            let (mut ok, mut retriable) = (0u64, 0u64);
            loop {
                if controller.epochs().0 > cepoch_before
                    && shards_of(&controller, victim_id) == original
                {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "rejoin never restored node {victim_id}'s shards {original:?}"
                );
                match client.top_k(TOP_K) {
                    Ok((e, _)) => {
                        assert_eq!(e, rank_before, "wrong-epoch response during rejoin");
                        ok += 1;
                    }
                    Err(err) if err.is_retriable() => retriable += 1,
                    Err(err) => panic!("non-retriable during rejoin: {err}"),
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            let wall = restart_start.elapsed();
            let (cepoch_after, rank_after) = controller.epochs();
            assert_eq!(rank_after, rank_before, "rejoin changed the ranking");
            assert_eq!(controller.n_nodes(), N_NODES, "rejoin lost a node");
            println!(
                "  >> node {victim_id} rejoined in {wall:.2?}: epoch {cepoch_before} -> \
                 {cepoch_after}, original {} shards restored",
                original.len()
            );
            nodes.push(returned);
            events.push(ChaosEvent {
                epoch,
                kind: "rejoin",
                node: victim_id,
                wall,
                cepoch_after,
                probes_ok: ok,
                probes_retriable: retriable,
            });
        }
    }
    let wall = bench_start.elapsed();

    let stats = controller.stats();
    let client_stats = client.stats();
    let serve_stats = server.stats();
    assert!(down.is_none(), "a killed node never rejoined");
    assert_eq!(stats.rank_epoch, engine.epoch());
    assert_eq!(stats.nodes.len(), N_NODES);
    assert!(
        stats.evictions >= 2,
        "kills not counted: {}",
        stats.evictions
    );
    assert!(stats.rejoins >= 2, "rejoins not counted: {}", stats.rejoins);
    assert!(stats.failovers >= 2, "failovers not counted");
    // Bounded retries, fleet-wide: the ambient loss rates cost a small
    // constant factor, not a multiplicative storm. The in-process mirror
    // saw the same query stream fault-free, so its retry rate bounds the
    // cluster's baseline.
    let total_probes: u64 = records
        .iter()
        .map(|r| (r.probe_old + r.probe_new + r.probe_retriable) as u64)
        .sum::<u64>()
        + events
            .iter()
            .map(|e| e.probes_ok + e.probes_retriable)
            .sum::<u64>();
    assert!(
        client_stats.gather_escalations <= total_probes / 4 + 8,
        "escalation storm: {} of {} probes",
        client_stats.gather_escalations,
        total_probes
    );
    assert!(
        serve_stats.retries_per_query() < 1.0,
        "in-process retry storm: {:.3} per query",
        serve_stats.retries_per_query()
    );
    let node_aborts: u64 = stats
        .nodes
        .iter()
        .filter_map(|n| n.wire.as_ref())
        .map(|w| w.aborted)
        .sum();
    println!(
        "\n{} publishes in {wall:.2?} under seed {seed:#x}: {} evictions, {} rejoins, \
         {} failovers, {} publish aborts delivered ({node_aborts} node-side), \
         {} client reconnects, {} placement evictions, {} gather retries / {} escalations \
         over {total_probes} probes — zero wrong-epoch responses",
        stats.publishes,
        stats.evictions,
        stats.rejoins,
        stats.failovers,
        stats.publish_aborts,
        client_stats.reconnects,
        client_stats.placement_evictions,
        client_stats.gather_retries,
        client_stats.gather_escalations,
    );

    let json = render_json(
        &current,
        smoke,
        seed,
        &records,
        &events,
        &stats,
        &client_stats,
        wall,
    );
    let out_path = if smoke { SMOKE_OUT_PATH } else { OUT_PATH };
    std::fs::write(out_path, json)?;
    println!("wrote {out_path}");

    controller.shutdown();
    for node in nodes {
        node.kill();
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    final_graph: &DocGraph,
    smoke: bool,
    seed: u64,
    records: &[EpochRecord],
    events: &[ChaosEvent],
    stats: &lmm_cluster::ClusterStats,
    client_stats: &lmm_cluster::ClientStats,
    wall: Duration,
) -> String {
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"exp_chaos\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"host_threads\": {host_threads},");
    let _ = writeln!(out, "  \"n_nodes\": {N_NODES},");
    let _ = writeln!(out, "  \"n_shards\": {N_SHARDS},");
    let _ = writeln!(out, "  \"final_docs\": {},", final_graph.n_docs());
    let _ = writeln!(out, "  \"final_sites\": {},", final_graph.n_sites());
    out.push_str("  \"epochs\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"epoch\": {}, \"kind\": \"{}\", \"cluster_epoch\": {}, \"rank_epoch\": {}, \
             \"publish_ms\": {:.3}, \"publish_attempts\": {}, \
             \"probe_old_epoch\": {}, \"probe_new_epoch\": {}, \"probe_retriable\": {}, \
             \"mass_error\": {:.3e}}}",
            r.epoch,
            r.kind,
            r.cepoch,
            r.rank_epoch,
            r.publish.as_secs_f64() * 1e3,
            r.attempts,
            r.probe_old,
            r.probe_new,
            r.probe_retriable,
            r.mass_error,
        );
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"events\": [\n");
    for (i, e) in events.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"epoch\": {}, \"kind\": \"{}\", \"node\": {}, \"wall_ms\": {:.3}, \
             \"cluster_epoch_after\": {}, \"probes_ok\": {}, \"probes_retriable\": {}, \
             \"wrong_epoch_responses\": 0}}",
            e.epoch,
            e.kind,
            e.node,
            e.wall.as_secs_f64() * 1e3,
            e.cepoch_after,
            e.probes_ok,
            e.probes_retriable,
        );
        out.push_str(if i + 1 == events.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"totals\": {{");
    let _ = writeln!(out, "    \"wall_ms\": {:.3},", wall.as_secs_f64() * 1e3);
    let _ = writeln!(out, "    \"publishes\": {},", stats.publishes);
    let _ = writeln!(out, "    \"evictions\": {},", stats.evictions);
    let _ = writeln!(out, "    \"failovers\": {},", stats.failovers);
    let _ = writeln!(out, "    \"rejoins\": {},", stats.rejoins);
    let _ = writeln!(out, "    \"publish_aborts\": {},", stats.publish_aborts);
    let _ = writeln!(
        out,
        "    \"missed_heartbeats\": {},",
        stats.missed_heartbeats
    );
    let _ = writeln!(out, "    \"doc_skew\": {:.4},", stats.doc_skew);
    let _ = writeln!(
        out,
        "    \"client_gather_retries\": {},",
        client_stats.gather_retries
    );
    let _ = writeln!(
        out,
        "    \"client_gather_escalations\": {},",
        client_stats.gather_escalations
    );
    let _ = writeln!(
        out,
        "    \"client_node_failures\": {},",
        client_stats.node_failures
    );
    let _ = writeln!(
        out,
        "    \"client_placement_evictions\": {},",
        client_stats.placement_evictions
    );
    let _ = writeln!(
        out,
        "    \"client_reconnects\": {},",
        client_stats.reconnects
    );
    let _ = writeln!(
        out,
        "    \"client_placement_refreshes\": {}",
        client_stats.placement_refreshes
    );
    out.push_str("  },\n");
    out.push_str("  \"nodes\": [\n");
    for (i, n) in stats.nodes.iter().enumerate() {
        let (docs, queries, aborted, expired) = n.wire.as_ref().map_or((0, 0, 0, 0), |w| {
            (w.n_docs(), w.queries, w.aborted, w.staged_expired)
        });
        let _ = write!(
            out,
            "    {{\"node\": {}, \"addr\": \"{}\", \"missed\": {}, \"docs\": {}, \
             \"queries\": {}, \"aborted\": {}, \"staged_expired\": {}}}",
            n.node, n.addr, n.missed, docs, queries, aborted, expired,
        );
        out.push_str(if i + 1 == stats.nodes.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
