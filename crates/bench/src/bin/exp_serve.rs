//! Experiment PR4: the sharded serving tier under closed-loop query load
//! with interleaved live deltas.
//!
//! Drives `lmm-serve`'s [`ShardedServer`] over a synthetic 100k-page
//! campus web: N reader threads run a closed query loop (mixed `top_k` /
//! `top_k_for_site` / `score` / `compare`) against the server while the
//! writer applies structural deltas through `RankEngine::apply_delta` and
//! hot-swaps the resulting snapshots. Three properties are asserted, not
//! just measured:
//!
//! * **correctness** — cross-shard `top_k` equals the engine cache's
//!   `top_k` *bitwise* at every epoch, and every reader response is
//!   verified against the published snapshot of the epoch it claims (a
//!   torn read fails immediately);
//! * **locality** — a publish rebuilds exactly the shards covering the
//!   delta's changed/grown site sets (serve telemetry counters), re-pins
//!   the rest, and site-layer-staling deltas rebuild everything;
//! * **availability** — a prober thread issues queries *during* every
//!   swap; each one must answer (old epoch or new — never an error, never
//!   a mixed-epoch response).
//!
//! Writes `BENCH_pr4.json` (`--smoke` writes `BENCH_pr4_smoke.json` for
//! CI so the committed measurements are never clobbered).
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_serve`

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lmm_bench::{section, timed};
use lmm_engine::{BackendSpec, MemorySink, RankEngine, RankSnapshot};
use lmm_graph::delta::{AppliedDelta, GraphDelta};
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::sharding::ShardMap;
use lmm_graph::{DocGraph, DocId, SiteId};
use lmm_serve::{ServeConfig, ShardedServer};

const OUT_PATH: &str = "BENCH_pr4.json";
const SMOKE_OUT_PATH: &str = "BENCH_pr4_smoke.json";
const TOP_K: usize = 10;
const READERS: usize = 4;
const PROBES_PER_SWAP: usize = 40;

/// Per-epoch ground truth, inserted before the epoch is published.
type Expected = Mutex<HashMap<u64, (RankSnapshot, Vec<(DocId, f64)>)>>;

struct StepRecord {
    step: usize,
    kind: &'static str,
    epoch: u64,
    apply: Duration,
    publish: Duration,
    shards_rebuilt: usize,
    shards_repinned: usize,
    probe_old_epoch: usize,
    probe_new_epoch: usize,
}

/// Deterministic xorshift64* for the query mix. (The vendored `rand`
/// shim is a dev-dependency of this crate — tests and benches only — so
/// experiment *bins* roll their own five-line generator.)
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }
    fn next(&mut self, m: usize) -> usize {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 33) as usize % m
    }
}

/// A serving-localized delta: intra-site rewire plus growth — no
/// cross-site change, so only the touched sites' shards rebuild.
fn local_delta(graph: &DocGraph, step: usize) -> GraphDelta {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    let mut site = (step * 7 + 3) % n_sites;
    while graph.site_size(SiteId(site)) < 3 {
        site = (site + 1) % n_sites;
    }
    let docs = graph.docs_of_site(SiteId(site));
    delta.remove_link(docs[0], docs[1]).expect("in range");
    delta.add_link(docs[1], docs[2]).expect("in range");
    delta.add_link(docs[2], docs[0]).expect("in range");
    let target = SiteId((step * 5 + 1) % n_sites);
    let root = graph.docs_of_site(target)[0];
    let p = delta
        .add_page(target, &format!("http://serve-grow-{step}.page/"))
        .expect("existing site");
    delta.add_link(root, p).expect("in range");
    delta.add_link(p, root).expect("in range");
    delta
}

/// A site-layer-staling delta: cross links (and every 2nd time a whole new
/// site), forcing a SiteRank recompute and therefore a full shard rebuild.
fn global_delta(graph: &DocGraph, step: usize) -> GraphDelta {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    let a = graph.docs_of_site(SiteId((step * 11 + 2) % n_sites))[0];
    let b = graph.docs_of_site(SiteId((step * 13 + 5) % n_sites))[0];
    delta.add_link(a, b).expect("in range");
    if step.is_multiple_of(2) {
        let s = delta.add_site(&format!("serve-{step}.example"));
        let mut pages = Vec::new();
        for i in 0..3 {
            pages.push(
                delta
                    .add_page(s, &format!("http://serve-{step}.example/{i}"))
                    .expect("new site"),
            );
        }
        for w in pages.windows(2) {
            delta.add_link(w[0], w[1]).expect("in range");
        }
        delta.add_link(pages[2], pages[0]).expect("in range");
        delta.add_link(a, pages[0]).expect("in range");
        delta.add_link(pages[0], a).expect("in range");
    }
    delta
}

/// The shards a publish must rebuild for this induced delta.
fn expected_rebuilds(map: &ShardMap, applied: &AppliedDelta) -> usize {
    if applied.cross_links_changed || applied.added_sites > 0 {
        map.n_shards()
    } else {
        map.shards_of_sites(
            applied
                .changed_sites
                .iter()
                .chain(applied.grown_sites.iter())
                .copied(),
        )
        .len()
    }
}

/// Verifies one reader response against the published ground truth of the
/// epoch it claims. Panics (failing the experiment) on any mismatch.
fn verify_response(expected: &Expected, kind: usize, query: &QueryOutcome) {
    let guard = expected.lock().expect("expected map poisoned");
    let (snap, want_top) = guard
        .get(&query.epoch)
        .unwrap_or_else(|| panic!("response from unpublished epoch {}", query.epoch));
    match (kind, query) {
        (0, QueryOutcome { top: Some(top), .. }) => {
            assert_eq!(top, want_top, "torn top_k at epoch {}", query.epoch);
        }
        (
            1,
            QueryOutcome {
                doc: Some((doc, score)),
                ..
            },
        ) => {
            assert_eq!(
                score.to_bits(),
                snap.scores()[doc.index()].to_bits(),
                "torn score at epoch {}",
                query.epoch
            );
        }
        (
            2,
            QueryOutcome {
                site: Some((site, top)),
                ..
            },
        ) => {
            let scores = snap.scores();
            let mut want: Vec<(DocId, f64)> = snap
                .members_of_site(*site)
                .iter()
                .map(|&d| (d, scores[d.index()]))
                .collect();
            want.sort_by(|x, y| {
                y.1.partial_cmp(&x.1)
                    .expect("finite scores")
                    .then(x.0.cmp(&y.0))
            });
            want.truncate(5);
            assert_eq!(top, &want, "torn site top_k at epoch {}", query.epoch);
        }
        (
            3,
            QueryOutcome {
                pair: Some((a, b, order)),
                ..
            },
        ) => {
            let scores = snap.scores();
            let want = scores[a.index()]
                .partial_cmp(&scores[b.index()])
                .expect("finite scores")
                .then(b.cmp(a));
            assert_eq!(*order, want, "torn compare at epoch {}", query.epoch);
        }
        _ => unreachable!("query outcome does not match its kind"),
    }
}

#[derive(Default)]
struct QueryOutcome {
    epoch: u64,
    top: Option<Vec<(DocId, f64)>>,
    doc: Option<(DocId, f64)>,
    site: Option<(SiteId, Vec<(DocId, f64)>)>,
    pair: Option<(DocId, DocId, std::cmp::Ordering)>,
}

/// One closed-loop reader iteration: pick a query kind, run it, verify it.
fn reader_iteration(
    server: &ShardedServer,
    expected: &Expected,
    rng: &mut XorShift,
    base_docs: usize,
    base_sites: usize,
) -> u64 {
    let kind = rng.next(4);
    let outcome = match kind {
        0 => {
            let (epoch, top) = server.top_k(TOP_K).expect("top_k failed");
            QueryOutcome {
                epoch,
                top: Some(top),
                ..QueryOutcome::default()
            }
        }
        1 => {
            let doc = DocId(rng.next(base_docs));
            let (epoch, score) = server.score(doc).expect("score failed");
            QueryOutcome {
                epoch,
                doc: Some((doc, score)),
                ..QueryOutcome::default()
            }
        }
        2 => {
            let site = SiteId(rng.next(base_sites));
            let (epoch, top) = server.top_k_for_site(site, 5).expect("site top_k failed");
            QueryOutcome {
                epoch,
                site: Some((site, top)),
                ..QueryOutcome::default()
            }
        }
        _ => {
            let a = DocId(rng.next(base_docs));
            let b = DocId(rng.next(base_docs));
            let (epoch, order) = server.compare(a, b).expect("compare failed");
            QueryOutcome {
                epoch,
                pair: Some((a, b, order)),
                ..QueryOutcome::default()
            }
        }
    };
    verify_response(expected, kind, &outcome);
    outcome.epoch
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let steps = if smoke { 4 } else { 10 };
    let n_shards = 8;

    let mut cfg = CampusWebConfig::paper_scale();
    cfg.spam_farms.clear();
    cfg.seed = 17;
    if smoke {
        cfg.total_docs = 2_000;
        cfg.n_sites = 40;
    } else {
        cfg.total_docs = 100_000;
        cfg.n_sites = 400;
    }
    let base = cfg.generate()?;
    let base_docs = base.n_docs();
    let base_sites = base.n_sites();

    section(&format!(
        "Sharded serving: {} docs, {} sites, {} links; {} shards, {} readers, {} delta steps",
        base.n_docs(),
        base.n_sites(),
        base.n_links(),
        n_shards,
        READERS,
        steps
    ));

    let sink = Arc::new(MemorySink::new());
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .damping(0.85)
        .tolerance(1e-10)
        .telemetry(sink)
        .build()?;
    let (_, warmup) = timed(|| engine.rank(&base).map(|_| ()));
    println!("base rank (cold): {warmup:.2?}");

    let expected: Arc<Expected> = Arc::new(Mutex::new(HashMap::new()));
    let record_epoch = |expected: &Expected, engine: &RankEngine| {
        let snap = engine.snapshot().expect("ranked");
        let top = engine.top_k(TOP_K).expect("ranked");
        expected
            .lock()
            .expect("expected map poisoned")
            .insert(snap.epoch(), (snap, top));
    };
    record_epoch(&expected, &engine);

    let map = ShardMap::balanced(&base, n_shards)?;
    let server = Arc::new(ShardedServer::start(
        map.clone(),
        &engine.snapshot()?,
        ServeConfig {
            heap_k: 128,
            max_gather_retries: 4,
            direct_reads: true,
        },
    )?);

    // Closed-loop readers: hammer until stopped, verifying every response.
    let stop = Arc::new(AtomicBool::new(false));
    let verified: Vec<Arc<AtomicU64>> = (0..READERS).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let published = Arc::new(AtomicU64::new(engine.epoch()));
    let behind_swap = Arc::new(AtomicU64::new(0)); // responses from < published epoch
    let mut reader_handles = Vec::new();
    for reader in 0..READERS {
        let server = Arc::clone(&server);
        let expected = Arc::clone(&expected);
        let stop = Arc::clone(&stop);
        let verified = Arc::clone(&verified[reader]);
        let published = Arc::clone(&published);
        let behind_swap = Arc::clone(&behind_swap);
        reader_handles.push(std::thread::spawn(move || {
            let mut rng = XorShift::new(0x5eed + reader as u64 * 7919);
            while !stop.load(Ordering::Relaxed) {
                let epoch = reader_iteration(&server, &expected, &mut rng, base_docs, base_sites);
                verified.fetch_add(1, Ordering::Relaxed);
                if epoch < published.load(Ordering::Relaxed) {
                    behind_swap.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    let bench_start = Instant::now();
    let mut current = base;
    let mut records: Vec<StepRecord> = Vec::new();
    println!(
        "{:>5} {:>8} {:>6} {:>10} {:>10} {:>14} {:>12}",
        "step", "kind", "epoch", "apply", "publish", "rebuilt/total", "probes old|new"
    );
    for step in 0..steps {
        let (delta, kind) = if step % 3 == 2 {
            (global_delta(&current, step), "global")
        } else {
            (local_delta(&current, step), "local")
        };
        let (mutated, applied) = current.apply(&delta)?;

        let (result, apply_wall) = timed(|| engine.apply_delta(&delta).map(|_| ()));
        result?;
        record_epoch(&expected, &engine);
        let snapshot = engine.snapshot()?;
        let old_epoch = snapshot.epoch() - 1;

        // Availability probe: a dedicated thread queries *while* the
        // publish below swaps shards; every probe must answer from the old
        // or the new epoch — never error, never mix.
        let prober = {
            let server = Arc::clone(&server);
            let expected = Arc::clone(&expected);
            let new_epoch = snapshot.epoch();
            std::thread::spawn(move || {
                let mut rng = XorShift::new(0xbeef + new_epoch);
                let mut old = 0usize;
                let mut new = 0usize;
                for _ in 0..PROBES_PER_SWAP {
                    let epoch =
                        reader_iteration(&server, &expected, &mut rng, base_docs, base_sites);
                    assert!(
                        epoch == old_epoch || epoch == new_epoch,
                        "probe answered from epoch {epoch}, swap is {old_epoch}->{new_epoch}"
                    );
                    if epoch == old_epoch {
                        old += 1;
                    } else {
                        new += 1;
                    }
                }
                (old, new)
            })
        };
        let (report, publish_wall) = timed(|| server.publish(&snapshot));
        let report = report?;
        published.store(report.epoch, Ordering::Relaxed);
        let (probe_old, probe_new) = prober.join().expect("prober panicked (torn response?)");

        // (b) Locality: exactly the shards of the delta's site sets were
        // rebuilt; the rest re-pinned.
        let want_rebuilt = expected_rebuilds(&map, &applied);
        assert_eq!(
            report.shards_rebuilt, want_rebuilt,
            "step {step}: rebuilt {} shards, induced delta demands {want_rebuilt}",
            report.shards_rebuilt
        );
        assert_eq!(
            report.shards_repinned,
            n_shards - want_rebuilt,
            "step {step}: re-pin accounting is off"
        );
        if kind == "local" {
            assert!(
                report.shards_rebuilt < n_shards,
                "step {step}: a local delta must not rebuild every shard"
            );
        }

        // (a) Correctness: cross-shard top-k equals the engine cache's
        // top-k bitwise at the new epoch.
        let (epoch, served_top) = server.top_k(TOP_K)?;
        assert_eq!(epoch, engine.epoch(), "serving epoch lags the engine");
        assert_eq!(
            served_top,
            engine.top_k(TOP_K)?,
            "step {step}: served top-k diverged from the engine cache"
        );

        println!(
            "{:>5} {:>8} {:>6} {:>10.2?} {:>10.2?} {:>9}/{:<4} {:>8}|{:<4}",
            step,
            kind,
            report.epoch,
            apply_wall,
            publish_wall,
            report.shards_rebuilt,
            n_shards,
            probe_old,
            probe_new,
        );
        records.push(StepRecord {
            step,
            kind,
            epoch: report.epoch,
            apply: apply_wall,
            publish: publish_wall,
            shards_rebuilt: report.shards_rebuilt,
            shards_repinned: report.shards_repinned,
            probe_old_epoch: probe_old,
            probe_new_epoch: probe_new,
        });
        current = mutated;
    }

    // Let every reader verify a few responses at the final epoch, then
    // stop the closed loop.
    let marks: Vec<u64> = verified
        .iter()
        .map(|v| v.load(Ordering::Relaxed) + 5)
        .collect();
    while verified
        .iter()
        .zip(&marks)
        .any(|(v, &m)| v.load(Ordering::Relaxed) < m)
    {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for handle in reader_handles {
        handle.join().expect("reader panicked (torn response?)");
    }
    let wall = bench_start.elapsed();

    let stats = server.stats();
    let total_verified: u64 = verified.iter().map(|v| v.load(Ordering::Relaxed)).sum();
    let probes_total = records
        .iter()
        .map(|r| r.probe_old_epoch + r.probe_new_epoch)
        .sum::<usize>();
    let old_epoch_probes = records.iter().map(|r| r.probe_old_epoch).sum::<usize>();
    // (c) Queries kept answering throughout every swap.
    assert_eq!(probes_total, steps * PROBES_PER_SWAP);
    let qps = stats.total_queries() as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "\nreaders verified {total_verified} responses ({:.0} q/s over {wall:.2?}); \
         {} answered during swaps from the pre-swap epoch; \
         gathers: {} retries, {} escalations",
        qps, old_epoch_probes, stats.gather_retries, stats.gate_escalations
    );

    let json = render_json(
        &current,
        smoke,
        n_shards,
        &records,
        &stats_json(
            &stats,
            total_verified,
            behind_swap.load(Ordering::Relaxed),
            old_epoch_probes,
            qps,
            wall,
        ),
    );
    let out_path = if smoke { SMOKE_OUT_PATH } else { OUT_PATH };
    std::fs::write(out_path, json)?;
    println!("wrote {out_path}");
    Ok(())
}

/// Pre-rendered totals block (hand-rolled JSON; the workspace is offline —
/// no serde).
#[allow(clippy::too_many_arguments)]
fn stats_json(
    stats: &lmm_serve::ServeStatsSnapshot,
    verified: u64,
    behind_swap: u64,
    old_epoch_probes: usize,
    qps: f64,
    wall: Duration,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "  \"totals\": {{");
    let _ = writeln!(out, "    \"wall_ms\": {:.3},", wall.as_secs_f64() * 1e3);
    let _ = writeln!(out, "    \"queries_per_second\": {qps:.0},");
    let _ = writeln!(out, "    \"responses_verified\": {verified},");
    let _ = writeln!(out, "    \"responses_behind_swap\": {behind_swap},");
    let _ = writeln!(
        out,
        "    \"probe_old_epoch_responses\": {old_epoch_probes},"
    );
    let _ = writeln!(out, "    \"score_queries\": {},", stats.score_queries);
    let _ = writeln!(out, "    \"batch_queries\": {},", stats.batch_queries);
    let _ = writeln!(out, "    \"top_k_queries\": {},", stats.top_k_queries);
    let _ = writeln!(
        out,
        "    \"site_top_k_queries\": {},",
        stats.site_top_k_queries
    );
    let _ = writeln!(out, "    \"compare_queries\": {},", stats.compare_queries);
    let _ = writeln!(out, "    \"gather_retries\": {},", stats.gather_retries);
    let _ = writeln!(out, "    \"gate_escalations\": {},", stats.gate_escalations);
    let _ = writeln!(out, "    \"publishes\": {},", stats.publishes);
    let _ = writeln!(out, "    \"shards_rebuilt\": {},", stats.shards_rebuilt);
    let _ = writeln!(out, "    \"shards_repinned\": {}", stats.shards_repinned);
    let _ = write!(out, "  }}");
    out
}

fn render_json(
    final_graph: &DocGraph,
    smoke: bool,
    n_shards: usize,
    records: &[StepRecord],
    totals: &str,
) -> String {
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"exp_serve\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"host_threads\": {host_threads},");
    let _ = writeln!(out, "  \"n_shards\": {n_shards},");
    let _ = writeln!(out, "  \"reader_threads\": {READERS},");
    let _ = writeln!(out, "  \"final_docs\": {},", final_graph.n_docs());
    let _ = writeln!(out, "  \"final_sites\": {},", final_graph.n_sites());
    let _ = writeln!(out, "  \"final_links\": {},", final_graph.n_links());
    out.push_str("  \"steps\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"step\": {}, \"kind\": \"{}\", \"epoch\": {}, \
             \"apply_ms\": {:.3}, \"publish_ms\": {:.3}, \
             \"shards_rebuilt\": {}, \"shards_repinned\": {}, \
             \"probe_old_epoch\": {}, \"probe_new_epoch\": {}}}",
            r.step,
            r.kind,
            r.epoch,
            r.apply.as_secs_f64() * 1e3,
            r.publish.as_secs_f64() * 1e3,
            r.shards_rebuilt,
            r.shards_repinned,
            r.probe_old_epoch,
            r.probe_new_epoch,
        );
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");
    out.push_str(totals);
    out.push_str("\n}\n");
    out
}
