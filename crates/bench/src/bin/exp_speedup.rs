//! Experiment PR2: wall-clock scaling of the parallel ranking core.
//!
//! Times the flat, layered (Approach 4), and incremental engine backends
//! at 1/2/4/8 worker threads on a synthetic 100k-page campus web and
//! writes the measurements to `BENCH_pr2.json`:
//!
//! * **flat** — pull-mode gather SpMV + parallel vector passes inside one
//!   global PageRank;
//! * **layered** — the per-site local-DocRank fan-out (the paper's
//!   embarrassingly parallel step 3);
//! * **incremental** — a warm refresh after ~10% of the sites changed,
//!   fanning only the stale sites.
//!
//! Every cell reports the **median of three** full runs (one sample in
//! `--smoke` mode), and every run is checked bit-for-bit against the
//! single-thread baseline: threads may only change wall time, never
//! scores. Speedups are bounded by the host (`host_threads` in the JSON
//! records `available_parallelism`; on a single-core container every
//! ratio is ~1.0 by construction).
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_speedup`
//! (`--smoke` for the CI-sized variant).

use std::fmt::Write as _;
use std::time::Duration;

use lmm_bench::{section, timed};
use lmm_core::siterank::SiteLayerMethod;
use lmm_engine::{BackendSpec, RankEngine, RankOutcome};
use lmm_graph::docgraph::{DocGraph, DocGraphBuilder};
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::SiteId;

/// Full runs write the committed benchmark artifact; `--smoke` writes a
/// sibling file so a CI smoke run never clobbers the real measurements.
const OUT_PATH: &str = "BENCH_pr2.json";
const SMOKE_OUT_PATH: &str = "BENCH_pr2_smoke.json";

struct Measurement {
    backend: &'static str,
    threads: usize,
    wall: Duration,
    iterations: usize,
}

fn engine(backend: BackendSpec, threads: usize) -> RankEngine {
    RankEngine::builder()
        .backend(backend)
        .damping(0.85)
        .tolerance(1e-10)
        .threads(threads)
        .build()
        .expect("valid engine config")
}

fn iterations_of(outcome: &RankOutcome) -> usize {
    outcome.telemetry.site_iterations + outcome.telemetry.total_local_iterations
}

/// Rewires one intra-site link in every 10th site, producing the "recrawl"
/// the incremental backend refreshes against.
fn edit_every_tenth_site(graph: &DocGraph) -> DocGraph {
    let mut builder = DocGraphBuilder::from_graph(graph);
    for s in (0..graph.n_sites()).step_by(10) {
        let docs = graph.docs_of_site(SiteId(s));
        if docs.len() < 3 {
            continue;
        }
        builder.remove_link(docs[0], docs[1]);
        builder
            .add_link(docs[1], docs[2])
            .expect("intra-site rewire");
    }
    builder.build()
}

fn assert_bit_identical(reference: &[f64], scores: &[f64], label: &str) {
    assert_eq!(reference.len(), scores.len(), "{label}: length mismatch");
    let identical = reference
        .iter()
        .zip(scores)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        identical,
        "{label}: scores depend on the thread count — determinism regression"
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    let mut cfg = CampusWebConfig::paper_scale();
    cfg.spam_farms.clear();
    cfg.seed = 7;
    if smoke {
        cfg.total_docs = 2_000;
        cfg.n_sites = 40;
    } else {
        cfg.total_docs = 100_000;
        cfg.n_sites = 400;
    }
    let graph = cfg.generate()?;
    let edited = edit_every_tenth_site(&graph);
    let host_threads = lmm_par::resolve_threads(0);

    section(&format!(
        "Parallel ranking core: {} docs, {} sites, {} links (host has {} core(s))",
        graph.n_docs(),
        graph.n_sites(),
        graph.n_links(),
        host_threads
    ));
    println!(
        "{:>16} {:>8} {:>12} {:>12} {:>10}",
        "backend", "threads", "wall", "iterations", "speedup"
    );

    let backends: [(&'static str, BackendSpec); 3] = [
        ("flat", BackendSpec::FlatPageRank),
        (
            "layered",
            BackendSpec::Layered {
                site_layer: SiteLayerMethod::Stationary,
            },
        ),
        ("incremental", BackendSpec::Incremental),
    ];

    // One timing sample is noise; take the median wall of SAMPLES full
    // runs per cell (each from a fresh engine — the serving cache would
    // otherwise turn repeats into no-ops).
    let samples = if smoke { 1 } else { 3 };
    let mut measurements: Vec<Measurement> = Vec::new();
    for (name, backend) in backends {
        let mut reference: Option<Vec<f64>> = None;
        let mut serial_wall: Option<Duration> = None;
        for &threads in thread_counts {
            let mut runs: Vec<(lmm_engine::RankOutcome, Duration)> = Vec::new();
            for _ in 0..samples {
                let mut eng = engine(backend, threads);
                let (outcome, wall) = if name == "incremental" {
                    // Warm the state on the base graph (untimed), then time
                    // the refresh against the edited recrawl.
                    let _ = eng.rank(&graph)?;
                    timed(|| eng.rank(&edited).cloned())
                } else {
                    timed(|| eng.rank(&graph).cloned())
                };
                runs.push((outcome?, wall));
            }
            runs.sort_by_key(|(_, wall)| *wall);
            let (outcome, wall) = runs.swap_remove(runs.len() / 2);
            let scores = outcome.ranking.scores();
            match &reference {
                None => reference = Some(scores.to_vec()),
                Some(reference) => assert_bit_identical(reference, scores, name),
            }
            let speedup = match serial_wall {
                None => {
                    serial_wall = Some(wall);
                    1.0
                }
                Some(serial) => serial.as_secs_f64() / wall.as_secs_f64(),
            };
            println!(
                "{:>16} {:>8} {:>12.2?} {:>12} {:>9.2}x",
                name,
                threads,
                wall,
                iterations_of(&outcome),
                speedup
            );
            measurements.push(Measurement {
                backend: name,
                threads,
                wall,
                iterations: iterations_of(&outcome),
            });
        }
    }

    let json = render_json(&graph, smoke, host_threads, &measurements);
    let out_path = if smoke { SMOKE_OUT_PATH } else { OUT_PATH };
    std::fs::write(out_path, json)?;
    println!("\nwrote {out_path}");
    println!("determinism: all runs bit-identical to their 1-thread baseline");
    Ok(())
}

/// Serializes the measurements by hand — the workspace is offline, so no
/// serde; the format is a stable flat schema for the README table.
fn render_json(
    graph: &DocGraph,
    smoke: bool,
    host_threads: usize,
    measurements: &[Measurement],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"exp_speedup\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"graph_docs\": {},", graph.n_docs());
    let _ = writeln!(out, "  \"graph_sites\": {},", graph.n_sites());
    let _ = writeln!(out, "  \"graph_links\": {},", graph.n_links());
    let _ = writeln!(out, "  \"host_threads\": {host_threads},");
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let serial = measurements
            .iter()
            .find(|o| o.backend == m.backend && o.threads == 1)
            .expect("1-thread baseline present");
        let speedup = serial.wall.as_secs_f64() / m.wall.as_secs_f64();
        let _ = write!(
            out,
            "    {{\"backend\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}, \
             \"iterations\": {}, \"speedup_vs_1t\": {:.3}}}",
            m.backend,
            m.threads,
            m.wall.as_secs_f64() * 1e3,
            m.iterations,
            speedup
        );
        out.push_str(if i + 1 == measurements.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}
