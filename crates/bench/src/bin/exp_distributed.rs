//! Experiment E7: distributed-deployment traffic and latency, through the
//! unified `RankEngine` with its telemetry sink.
//!
//! Measures what each architecture moves over the (simulated) wire on the
//! campus web: the paper's P2P motivation made quantitative. Also sweeps
//! message-loss rates to show the protocol converges to the identical
//! ranking while paying retransmission traffic.
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_distributed [--full]`

use std::sync::Arc;

use lmm_bench::{human_bytes, section};
use lmm_engine::{BackendSpec, MemorySink, RankEngine, RankOutcome};
use lmm_p2p::runner::{run_distributed, Architecture, DistributedConfig};
use lmm_p2p::FaultConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = lmm_bench::campus_config_from_args();
    // Traffic scales are clearer on a mid-size instance; trim the default.
    if !std::env::args().any(|a| a == "--full") {
        cfg.total_docs = 20_000;
    }
    let graph = cfg.generate()?;
    section("Deployment comparison (engine telemetry)");
    println!(
        "graph: {} docs, {} sites, {} links\n",
        graph.n_docs(),
        graph.n_sites(),
        graph.n_links()
    );

    println!(
        "{:<38} {:>12} {:>12} {:>8} {:>12}",
        "backend", "messages", "bytes", "rounds", "wall"
    );
    let sink = Arc::new(MemorySink::new());
    let mut flat_outcome: Option<RankOutcome> = None;
    for architecture in [
        Architecture::Flat,
        Architecture::SuperPeer { n_groups: 16 },
        Architecture::Hybrid,
        Architecture::Centralized,
    ] {
        let mut engine = RankEngine::builder()
            .backend(BackendSpec::Distributed { architecture })
            .damping(0.85)
            .tolerance(1e-10)
            .telemetry(sink.clone())
            .build()?;
        let outcome = engine.rank(&graph)?.clone();
        let t = &outcome.telemetry;
        println!(
            "{:<38} {:>12} {:>12} {:>8} {:>12.2?}",
            outcome.backend,
            t.messages,
            human_bytes(t.bytes),
            t.site_iterations,
            t.wall
        );
        if architecture == Architecture::Flat {
            flat_outcome = Some(outcome);
        } else if !matches!(architecture, Architecture::Centralized) {
            let cmp = outcome.compare(flat_outcome.as_ref().expect("flat first"), 15)?;
            assert!(cmp.l1 < 1e-6, "{architecture}: diverged — {cmp}");
        }
    }
    println!(
        "\n{} runs recorded by the shared telemetry sink",
        sink.len()
    );

    section("Phase breakdown (flat architecture; low-level simulator view)");
    let flat = run_distributed(&graph, &DistributedConfig::default())?;
    println!("{}", flat.stats);

    section("Message-loss sweep (flat architecture)");
    println!(
        "{:>10} {:>12} {:>16} {:>14}",
        "loss", "messages", "retransmissions", "result drift"
    );
    let clean = flat_outcome.expect("flat ran");
    for drop_prob in [0.0, 0.05, 0.1, 0.2, 0.4] {
        let mut builder = RankEngine::builder()
            .backend(BackendSpec::Distributed {
                architecture: Architecture::Flat,
            })
            .damping(0.85)
            .tolerance(1e-10);
        if drop_prob > 0.0 {
            builder = builder.fault(FaultConfig { drop_prob, seed: 3 });
        }
        let mut engine = builder.build()?;
        let outcome = engine.rank(&graph)?;
        println!(
            "{:>9.0}% {:>12} {:>16} {:>14.2e}",
            drop_prob * 100.0,
            outcome.telemetry.messages,
            outcome.telemetry.retransmissions,
            outcome.compare(&clean, 15)?.l1
        );
    }
    Ok(())
}
