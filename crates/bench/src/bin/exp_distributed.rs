//! Experiment E7: distributed-deployment traffic and latency.
//!
//! Measures what each architecture moves over the (simulated) wire on the
//! campus web: the paper's P2P motivation made quantitative. Also sweeps
//! message-loss rates to show the protocol converges to the identical
//! ranking while paying retransmission traffic.
//!
//! Run: `cargo run --release -p lmm-bench --bin exp_distributed [--full]`

use lmm_bench::{campus_config_from_args, human_bytes, section};
use lmm_linalg::vec_ops;
use lmm_p2p::runner::{run_distributed, Architecture, DistributedConfig};
use lmm_p2p::FaultConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = campus_config_from_args();
    // Traffic scales are clearer on a mid-size instance; trim the default.
    if !std::env::args().any(|a| a == "--full") {
        cfg.total_docs = 20_000;
    }
    let graph = cfg.generate()?;
    section("Deployment comparison");
    println!(
        "graph: {} docs, {} sites, {} links\n",
        graph.n_docs(),
        graph.n_sites(),
        graph.n_links()
    );

    println!(
        "{:<28} {:>12} {:>12} {:>8} {:>12}",
        "architecture", "messages", "bytes", "rounds", "wall"
    );
    let mut flat_ranking: Option<Vec<f64>> = None;
    for arch in [
        Architecture::Flat,
        Architecture::SuperPeer { n_groups: 16 },
        Architecture::Hybrid,
        Architecture::Centralized,
    ] {
        let outcome =
            run_distributed(&graph, &DistributedConfig::default().with_architecture(arch))?;
        let total = outcome.stats.total();
        println!(
            "{:<28} {:>12} {:>12} {:>8} {:>12.2?}",
            arch.to_string(),
            total.messages,
            human_bytes(total.bytes),
            outcome.siterank_rounds,
            outcome.stats.total_wall()
        );
        if arch == Architecture::Flat {
            flat_ranking = Some(outcome.global.scores().to_vec());
        } else if !matches!(arch, Architecture::Centralized) {
            let diff = vec_ops::l1_diff(
                flat_ranking.as_deref().expect("flat first"),
                outcome.global.scores(),
            );
            assert!(diff < 1e-6, "{arch}: diverged by {diff}");
        }
    }

    section("Phase breakdown (flat architecture)");
    let flat = run_distributed(&graph, &DistributedConfig::default())?;
    println!("{}", flat.stats);

    section("Message-loss sweep (flat architecture)");
    println!(
        "{:>10} {:>12} {:>16} {:>14}",
        "loss", "messages", "retransmissions", "result drift"
    );
    let clean = run_distributed(&graph, &DistributedConfig::default())?;
    for drop_prob in [0.0, 0.05, 0.1, 0.2, 0.4] {
        let mut cfg = DistributedConfig::default();
        if drop_prob > 0.0 {
            cfg.fault = Some(FaultConfig { drop_prob, seed: 3 });
        }
        let outcome = run_distributed(&graph, &cfg)?;
        println!(
            "{:>9.0}% {:>12} {:>16} {:>14.2e}",
            drop_prob * 100.0,
            outcome.stats.total().messages,
            outcome.stats.total().retransmissions,
            vec_ops::l1_diff(clean.global.scores(), outcome.global.scores())
        );
    }
    Ok(())
}
