//! Experiment harness shared by the `exp_*` binaries and the Criterion
//! benchmarks.
//!
//! Every table and figure of the paper maps to one binary (see DESIGN.md's
//! experiment index):
//!
//! | binary | experiment | paper artifact |
//! |--------|------------|----------------|
//! | `exp_fig2` | E2 | §2.3 worked example, Figure 2 |
//! | `exp_campus` | E3/E4 | Figures 3 and 4 (top-15 lists, spam shares) |
//! | `exp_partition` | E5 | Theorem 2 at scale |
//! | `exp_scalability` | E6 | §2.3.3 complexity claim |
//! | `exp_distributed` | E7 | §3.2 P2P deployment traffic |
//! | `exp_ablation` | E8–E10 | BlockRank contrast, weighting/self-loop/α ablations |
//! | `exp_crawl` | E11 | §2.2 self-similarity: ranking stability vs crawl coverage |
//!
//! Run all of them with `for b in exp_fig2 exp_campus exp_partition
//! exp_scalability exp_distributed exp_ablation exp_crawl; do cargo run --release -p
//! lmm-bench --bin $b; done`.

use std::time::{Duration, Instant};

use lmm_engine::{BackendSpec, EngineError, RankEngine};
use lmm_graph::docgraph::DocGraph;
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::DocId;
use lmm_rank::Ranking;

/// Builds a `RankEngine` with the experiments' shared defaults (damping
/// 0.85, tolerance 1e-10) — every experiment binary goes through the
/// unified engine API with these settings unless it sweeps them.
///
/// # Errors
/// Propagates builder validation failures (none for built-in backends with
/// these defaults).
pub fn experiment_engine(backend: BackendSpec) -> Result<RankEngine, EngineError> {
    RankEngine::builder()
        .backend(backend)
        .damping(0.85)
        .tolerance(1e-10)
        .build()
}

/// Prints a section separator with a title.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Times a closure, returning its result and the wall duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// The experiment-scale campus web: honors the `--full` CLI flag (433k
/// pages) and otherwise uses the 50k-page default that matches the paper's
/// 218 sites.
#[must_use]
pub fn campus_config_from_args() -> CampusWebConfig {
    if std::env::args().any(|a| a == "--full") {
        CampusWebConfig::full_scale()
    } else {
        CampusWebConfig::paper_scale()
    }
}

/// Prints a Figure-3/4-style top-`k` listing: rank value, spam marker,
/// URL.
pub fn print_top_k(graph: &DocGraph, ranking: &Ranking, k: usize) {
    let spam = graph.spam_labels();
    for (pos, doc) in ranking.top_k(k).into_iter().enumerate() {
        let marker = if spam[doc] { "SPAM" } else { "    " };
        println!(
            "  {:>2}. {marker} {:.6}  {}",
            pos + 1,
            ranking.score(doc),
            graph.url(DocId(doc))
        );
    }
}

/// Formats a byte count with a binary-prefix unit.
#[must_use]
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn timed_measures() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn default_config_is_paper_scale() {
        let cfg = campus_config_from_args();
        assert_eq!(cfg.n_sites, 218);
    }
}
