//! Criterion bench for experiment E7: full distributed runs per
//! architecture.

use criterion::{criterion_group, criterion_main, Criterion};
use lmm_graph::generator::CampusWebConfig;
use lmm_p2p::runner::{run_distributed, Architecture, DistributedConfig};
use std::hint::black_box;

fn bench_distributed(c: &mut Criterion) {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 1_000;
    cfg.n_sites = 20;
    // The small preset hosts its second farm on site 23; rehome the farms
    // inside the shrunken site range.
    cfg.spam_farms.truncate(1);
    cfg.spam_farms[0].host_site = 9;
    cfg.spam_farms[0].n_pages = 100;
    let graph = cfg.generate().expect("campus web");
    let mut group = c.benchmark_group("distributed");
    group.sample_size(10);
    for (name, arch) in [
        ("flat", Architecture::Flat),
        ("superpeer_5", Architecture::SuperPeer { n_groups: 5 }),
        ("hybrid", Architecture::Hybrid),
        ("centralized", Architecture::Centralized),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    run_distributed(
                        &graph,
                        &DistributedConfig::default().with_architecture(arch),
                    )
                    .expect("run"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributed);
criterion_main!(benches);
