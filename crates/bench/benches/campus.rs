//! Criterion bench for experiments E3/E4: flat PageRank vs the layered
//! pipeline on the synthetic campus web.

use criterion::{criterion_group, criterion_main, Criterion};
use lmm_core::siterank::{flat_pagerank, layered_doc_rank, LayeredRankConfig};
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::sitegraph::{SiteGraph, SiteGraphOptions};
use lmm_linalg::PowerOptions;
use std::hint::black_box;

fn bench_campus(c: &mut Criterion) {
    let graph = CampusWebConfig::small().generate().expect("campus web");
    let power = PowerOptions::with_tol(1e-10);
    let mut group = c.benchmark_group("campus");
    group.sample_size(10);

    group.bench_function("generate_graph", |b| {
        b.iter(|| black_box(CampusWebConfig::small().generate().expect("campus web")))
    });
    group.bench_function("flat_pagerank", |b| {
        b.iter(|| black_box(flat_pagerank(&graph, 0.85, &power, 0).expect("flat")))
    });
    group.bench_function("layered_pipeline", |b| {
        b.iter(|| {
            black_box(layered_doc_rank(&graph, &LayeredRankConfig::default()).expect("layered"))
        })
    });
    group.bench_function("sitegraph_derivation", |b| {
        b.iter(|| {
            black_box(SiteGraph::from_doc_graph(
                &graph,
                &SiteGraphOptions::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_campus);
criterion_main!(benches);
