//! Criterion bench for experiment E2: the four ranking approaches on the
//! paper's 12-state worked example.

use criterion::{criterion_group, criterion_main, Criterion};
use lmm_core::approaches::{compute, LmmParams, RankApproach};
use lmm_core::worked_example::paper_model;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let model = paper_model().expect("paper model builds");
    let params = LmmParams::default();
    let mut group = c.benchmark_group("fig2_worked_example");
    for approach in RankApproach::ALL {
        group.bench_function(format!("approach_{}", approach.number()), |b| {
            b.iter(|| {
                let r = compute(black_box(&model), approach, &params).expect("ranks");
                black_box(r)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
