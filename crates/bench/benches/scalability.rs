//! Criterion bench for experiment E6: centralized (explicit `W`, implicit
//! factored operator) vs the Layered Method as the model grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lmm_core::approaches::{compute, LmmParams, RankApproach};
use lmm_core::global::{global_transition_matrix, phase_gatekeeper_distributions};
use lmm_core::synth::random_sparse_model;
use lmm_linalg::power::stationary_distribution;
use std::hint::black_box;

fn bench_scalability(c: &mut Criterion) {
    let params = LmmParams::default();
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    for (n_phases, sub) in [(8usize, 50usize), (16, 100), (32, 200)] {
        let model = random_sparse_model(n_phases, sub, 6, 42);
        let states = model.total_states();
        group.throughput(Throughput::Elements(states as u64));

        group.bench_with_input(
            BenchmarkId::new("explicit_w", states),
            &model,
            |b, model| {
                b.iter(|| {
                    let dists = phase_gatekeeper_distributions(model, params.alpha, &params.power)
                        .expect("gatekeepers");
                    let w = global_transition_matrix(model, &dists).expect("W");
                    let (pi, _) = stationary_distribution(&w, &params.power).expect("stationary");
                    black_box(pi)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("implicit_a2", states),
            &model,
            |b, model| {
                b.iter(|| {
                    black_box(
                        compute(model, RankApproach::StationaryOfGlobal, &params).expect("A2"),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("layered_a4", states),
            &model,
            |b, model| {
                b.iter(|| black_box(compute(model, RankApproach::Layered, &params).expect("A4")))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
