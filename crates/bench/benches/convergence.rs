//! Criterion bench for experiment E10c's computational side: power-method
//! convergence cost as a function of the damping factor and tolerance.
//!
//! Higher damping mixes slower (the spectral gap of the Google matrix is
//! `1 − f`), so iterations — and wall time — grow sharply toward `f = 1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmm_core::synth::random_sparse_stochastic;
use lmm_rank::pagerank::PageRank;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_convergence(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let chain = random_sparse_stochastic(2_000, 8, &mut rng);
    let mut group = c.benchmark_group("convergence");
    group.sample_size(10);
    for damping in [0.5f64, 0.7, 0.85, 0.95] {
        group.bench_with_input(
            BenchmarkId::new("damping", format!("{damping}")),
            &damping,
            |b, &f| {
                b.iter(|| {
                    let r = PageRank::new()
                        .damping(f)
                        .tol(1e-10)
                        .run(black_box(&chain))
                        .expect("converges");
                    black_box(r)
                })
            },
        );
    }
    // The paper's cited alternative: accelerate the centralized iteration
    // by extrapolation (Kamvar et al.). Compare plain vs Aitken at high
    // damping, where the spectral gap is smallest.
    for (name, acceleration) in [
        ("plain", lmm_linalg::Acceleration::None),
        ("aitken_5", lmm_linalg::Acceleration::Aitken { period: 5 }),
        ("aitken_10", lmm_linalg::Acceleration::Aitken { period: 10 }),
    ] {
        group.bench_with_input(
            BenchmarkId::new("acceleration", name),
            &acceleration,
            |b, &acc| {
                b.iter(|| {
                    let r = PageRank::new()
                        .damping(0.95)
                        .tol(1e-12)
                        .acceleration(acc)
                        .run(black_box(&chain))
                        .expect("converges");
                    black_box(r)
                })
            },
        );
    }
    for tol in [1e-6f64, 1e-9, 1e-12] {
        group.bench_with_input(
            BenchmarkId::new("tolerance", format!("{tol:e}")),
            &tol,
            |b, &tol| {
                b.iter(|| {
                    let r = PageRank::new()
                        .tol(tol)
                        .run(black_box(&chain))
                        .expect("converges");
                    black_box(r)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
