//! Property tests for the cluster wire protocol: every message variant
//! round-trips bit-exactly, and the decoder is *total* — truncated
//! frames, oversized length prefixes, unknown versions/tags, and outright
//! arbitrary bytes are all refused with a typed error, never a panic.

use lmm_cluster::{
    decode_frame, decode_message, encode_frame, Message, NodeWireStats, WireError, MAX_PAYLOAD,
};
use lmm_engine::SnapshotSegment;
use lmm_graph::{DocId, SiteId};
use lmm_serve::{DocScore, SiteTopK, SwapGrade};
use proptest::prelude::*;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Any *finite* double (sign preserved, exponent never all-ones), so
/// `PartialEq` on the decoded message is meaningful.
fn finite(bits: u64) -> f64 {
    f64::from_bits((bits & 0x8000_0000_0000_0000) | (bits & 0x7FEF_FFFF_FFFF_FFFF))
}

fn segment(s: &mut u64) -> SnapshotSegment {
    let start = (xorshift(s) % 8) as usize;
    let covered = (xorshift(s) % 4) as usize;
    let n_docs = 32usize;
    let members: Vec<Vec<DocId>> = (0..covered)
        .map(|_| {
            (0..xorshift(s) % 5)
                .map(|_| DocId((xorshift(s) % n_docs as u64) as usize))
                .collect()
        })
        .collect();
    let member_scores: Vec<Vec<f64>> = members
        .iter()
        .map(|docs| docs.iter().map(|_| finite(xorshift(s))).collect())
        .collect();
    SnapshotSegment {
        epoch: xorshift(s),
        backend: format!("backend-{}", xorshift(s) % 100),
        sites: start..start + covered,
        n_docs,
        n_sites: start + covered + (xorshift(s) % 3) as usize,
        members,
        member_scores,
        tombstoned: (0..xorshift(s) % 3)
            .map(|_| {
                (
                    DocId((xorshift(s) % n_docs as u64) as usize),
                    SiteId((xorshift(s) % 16) as usize),
                )
            })
            .collect(),
    }
}

/// One instance of **every** protocol variant, fields drawn from `seed`.
fn messages_from(seed: u64) -> Vec<Message> {
    let s = &mut (seed | 1);
    let entries = |s: &mut u64| -> Vec<(DocId, f64)> {
        (0..xorshift(s) % 5)
            .map(|_| (DocId((xorshift(s) % 64) as usize), finite(xorshift(s))))
            .collect()
    };
    vec![
        Message::Register {
            addr: format!("127.0.0.1:{}", xorshift(s) % 65536),
        },
        Message::Registered { node: xorshift(s) },
        Message::Ping { seq: xorshift(s) },
        Message::Pong {
            seq: xorshift(s),
            epoch: xorshift(s),
        },
        Message::PlacementReq,
        Message::Placement {
            epoch: xorshift(s),
            rank_epoch: xorshift(s),
            boundaries: (0..xorshift(s) % 6).map(|_| xorshift(s)).collect(),
            owners: (0..xorshift(s) % 6)
                .map(|_| format!("n{}", xorshift(s) % 1000))
                .collect(),
        },
        Message::RoutingReq,
        Message::Routing {
            rank_epoch: xorshift(s),
            site_of: (0..xorshift(s) % 20).map(|_| xorshift(s) % 64).collect(),
        },
        Message::Stage {
            epoch: xorshift(s),
            shard: xorshift(s) % 16,
            grade: match xorshift(s) % 3 {
                0 => SwapGrade::Rebuild,
                1 => SwapGrade::Refresh,
                _ => SwapGrade::Repin,
            },
            segment: if xorshift(s).is_multiple_of(2) {
                Some(segment(s))
            } else {
                None
            },
        },
        Message::Commit {
            epoch: xorshift(s),
            rank_epoch: xorshift(s),
        },
        Message::Abort { epoch: xorshift(s) },
        Message::Rejoin {
            node: xorshift(s),
            addr: format!("127.0.0.1:{}", xorshift(s) % 65536),
        },
        Message::Ack { epoch: xorshift(s) },
        Message::ScoreBatch {
            shard: xorshift(s) % 16,
            docs: (0..xorshift(s) % 8).map(|_| xorshift(s) % 1024).collect(),
        },
        Message::TopKReq {
            shard: xorshift(s) % 16,
            k: xorshift(s) % 100,
        },
        Message::SiteTopKReq {
            shard: xorshift(s) % 16,
            site: xorshift(s) % 64,
            k: xorshift(s) % 100,
        },
        Message::Scores {
            epoch: xorshift(s),
            rank_epoch: xorshift(s),
            scores: (0..xorshift(s) % 6)
                .map(|_| match xorshift(s) % 3 {
                    0 => DocScore::Live(finite(xorshift(s))),
                    1 => DocScore::Tombstoned,
                    _ => DocScore::Unknown,
                })
                .collect(),
        },
        Message::Top {
            epoch: xorshift(s),
            rank_epoch: xorshift(s),
            entries: entries(s),
            complete: xorshift(s).is_multiple_of(2),
        },
        Message::SiteTop {
            epoch: xorshift(s),
            rank_epoch: xorshift(s),
            reply: match xorshift(s) % 3 {
                0 => SiteTopK::Entries(entries(s)),
                1 => SiteTopK::Tombstoned,
                _ => SiteTopK::NotCovered,
            },
        },
        Message::StatsReq,
        Message::Stats(NodeWireStats {
            node: xorshift(s),
            epoch: xorshift(s),
            rank_epoch: xorshift(s),
            shard_docs: (0..xorshift(s) % 5)
                .map(|_| (xorshift(s) % 16, xorshift(s) % 10_000))
                .collect(),
            queries: xorshift(s),
            tombstone_rejections: xorshift(s),
            staged: xorshift(s),
            commits: xorshift(s),
            aborted: xorshift(s),
            staged_expired: xorshift(s),
            bytes_sent: xorshift(s),
            bytes_recv: xorshift(s),
        }),
        Message::NotOwner {
            shard: xorshift(s) % 16,
        },
        Message::Bad {
            detail: format!("cause {}", xorshift(s)),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_variant_round_trips(seed in any::<u64>()) {
        for msg in messages_from(seed) {
            let frame = encode_frame(&msg).expect("encodable");
            let (back, consumed) = decode_frame(&frame).expect("decodable");
            prop_assert_eq!(consumed, frame.len());
            prop_assert_eq!(back, msg);
        }
    }

    #[test]
    fn truncated_frames_are_refused_not_panicked(seed in any::<u64>()) {
        for msg in messages_from(seed) {
            let frame = encode_frame(&msg).expect("encodable");
            // Every strict prefix must fail typed — the frame length
            // header promises more bytes than are present.
            for cut in 0..frame.len() {
                prop_assert!(
                    decode_frame(&frame[..cut]).is_err(),
                    "prefix of {} bytes decoded", cut
                );
            }
        }
    }

    #[test]
    fn unknown_versions_and_tags_are_refused(seed in any::<u64>(), corrupt in any::<u64>()) {
        let frame = encode_frame(&Message::Ping { seq: seed }).expect("encodable");
        let bad_version = 2u8.wrapping_add((corrupt % 254) as u8); // never 1
        let mut v = frame.clone();
        v[4] = bad_version;
        prop_assert_eq!(
            decode_frame(&v),
            Err(WireError::BadVersion { version: bad_version })
        );
        let bad_tag = 24u8.saturating_add((corrupt % 232) as u8); // past every tag
        let mut t = frame;
        t[5] = bad_tag;
        prop_assert_eq!(decode_frame(&t), Err(WireError::BadTag { tag: bad_tag }));
    }

    #[test]
    fn oversized_length_prefixes_are_refused(extra in any::<u32>()) {
        let len = MAX_PAYLOAD.saturating_add(extra.max(1));
        let mut frame = len.to_be_bytes().to_vec();
        frame.extend_from_slice(&[0u8; 16]);
        prop_assert_eq!(
            decode_frame(&frame),
            Err(WireError::Oversized { len: u64::from(len) })
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic(words in prop::collection::vec(any::<u64>(), 0..64)) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        // Totality is the property: any outcome but a panic is fine, and
        // a successful decode must account for its consumption honestly.
        if let Ok((_, consumed)) = decode_frame(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
        let _ = decode_message(&bytes);
        // Same with a plausible length header stapled on.
        let mut framed = ((bytes.len()) as u32).to_be_bytes().to_vec();
        framed.extend_from_slice(&bytes);
        if let Ok((_, consumed)) = decode_frame(&framed) {
            prop_assert!(consumed <= framed.len());
        }
    }
}
