//! Wire-tag registry regression: every `Message` variant's tag byte must
//! match the committed golden registry (`wire_tags.golden`) byte for
//! byte. Tag numbering is wire-compat critical — a mixed-version cluster
//! decodes frames by these bytes — so a failure here means a variant was
//! renumbered, dropped, or added without updating the registry
//! (`cargo run -p lmm-lint -- --update-golden`).

use std::collections::BTreeMap;

use lmm_cluster::{encode_message, Message, NodeWireStats, WIRE_VERSION};
use lmm_engine::SnapshotSegment;
use lmm_graph::{DocId, SiteId};
use lmm_serve::{DocScore, SiteTopK, SwapGrade};

fn golden() -> BTreeMap<u8, String> {
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("wire_tags.golden"),
    )
    .expect("wire_tags.golden is committed next to Cargo.toml");
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut parts = l.split_whitespace();
            let tag: u8 = parts.next().expect("tag").parse().expect("numeric tag");
            let variant = parts.next().expect("variant name").to_string();
            (tag, variant)
        })
        .collect()
}

fn segment() -> SnapshotSegment {
    SnapshotSegment {
        epoch: 9,
        backend: "layered".into(),
        sites: 2..3,
        n_docs: 10,
        n_sites: 5,
        members: vec![vec![DocId(3)]],
        member_scores: vec![vec![0.5]],
        tombstoned: vec![(DocId(5), SiteId(2))],
    }
}

/// One exemplar per variant, labeled with its golden registry name.
fn exemplars() -> Vec<(&'static str, Message)> {
    vec![
        ("Register", Message::Register { addr: "a:1".into() }),
        ("Registered", Message::Registered { node: 7 }),
        (
            "Rejoin",
            Message::Rejoin {
                node: 7,
                addr: "a:2".into(),
            },
        ),
        ("Ping", Message::Ping { seq: 1 }),
        ("Pong", Message::Pong { seq: 1, epoch: 2 }),
        ("PlacementReq", Message::PlacementReq),
        (
            "Placement",
            Message::Placement {
                epoch: 1,
                rank_epoch: 2,
                boundaries: vec![0, 3],
                owners: vec!["a:1".into(), "b:2".into()],
            },
        ),
        ("RoutingReq", Message::RoutingReq),
        (
            "Routing",
            Message::Routing {
                rank_epoch: 2,
                site_of: vec![0, 0, 1],
            },
        ),
        (
            "Stage",
            Message::Stage {
                epoch: 3,
                shard: 0,
                grade: SwapGrade::Rebuild,
                segment: Some(segment()),
            },
        ),
        (
            "Commit",
            Message::Commit {
                epoch: 3,
                rank_epoch: 2,
            },
        ),
        ("Abort", Message::Abort { epoch: 3 }),
        ("Ack", Message::Ack { epoch: 3 }),
        (
            "ScoreBatch",
            Message::ScoreBatch {
                shard: 0,
                docs: vec![1, 2],
            },
        ),
        ("TopKReq", Message::TopKReq { shard: 0, k: 5 }),
        (
            "SiteTopKReq",
            Message::SiteTopKReq {
                shard: 0,
                site: 1,
                k: 5,
            },
        ),
        (
            "Scores",
            Message::Scores {
                epoch: 3,
                rank_epoch: 2,
                scores: vec![DocScore::Live(0.5), DocScore::Tombstoned, DocScore::Unknown],
            },
        ),
        (
            "Top",
            Message::Top {
                epoch: 3,
                rank_epoch: 2,
                entries: vec![(DocId(1), 0.5)],
                complete: true,
            },
        ),
        (
            "SiteTop",
            Message::SiteTop {
                epoch: 3,
                rank_epoch: 2,
                reply: SiteTopK::Entries(vec![(DocId(1), 0.5)]),
            },
        ),
        ("StatsReq", Message::StatsReq),
        (
            "Stats",
            Message::Stats(NodeWireStats {
                node: 7,
                epoch: 3,
                rank_epoch: 2,
                shard_docs: vec![(0, 10)],
                queries: 0,
                tombstone_rejections: 0,
                staged: 0,
                commits: 0,
                aborted: 0,
                staged_expired: 0,
                bytes_sent: 0,
                bytes_recv: 0,
            }),
        ),
        ("NotOwner", Message::NotOwner { shard: 0 }),
        (
            "Bad",
            Message::Bad {
                detail: "no".into(),
            },
        ),
    ]
}

#[test]
fn every_variant_tag_matches_the_golden_registry() {
    let golden = golden();
    let by_name: BTreeMap<&String, u8> = golden.iter().map(|(t, n)| (n, *t)).collect();
    let mut seen = BTreeMap::new();
    for (name, msg) in exemplars() {
        let payload = encode_message(&msg).expect("encode");
        assert_eq!(payload[0], WIRE_VERSION, "{name}: version byte");
        let tag = payload[1];
        let expected = *by_name
            .get(&name.to_string())
            .unwrap_or_else(|| panic!("{name} missing from wire_tags.golden"));
        assert_eq!(tag, expected, "{name}: tag byte drifted from the registry");
        assert!(
            seen.insert(tag, name).is_none(),
            "tag {tag} encoded by two variants"
        );
    }
    assert_eq!(
        seen.len(),
        golden.len(),
        "every registry entry must be exercised; registry has {} tags, test covers {}",
        golden.len(),
        seen.len()
    );
}

#[test]
fn registry_is_the_contiguous_range_1_to_23() {
    let golden = golden();
    let tags: Vec<u8> = golden.keys().copied().collect();
    assert_eq!(tags, (1..=23).collect::<Vec<u8>>());
}
