//! End-to-end loopback cluster tests: a real controller, real `ShardNode`
//! processes-in-threads behind real TCP sockets, and a `ClusterClient`
//! whose answers must be **bitwise identical** to the in-process
//! `ShardedServer` at every published epoch — through churn republishes,
//! heartbeat-driven eviction, and a mid-run node kill.
//!
//! Everything binds 127.0.0.1:0 and spawns its own threads, so the suite
//! is `RUST_TEST_THREADS=1`-safe.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lmm_cluster::{
    ClientConfig, ClusterClient, ClusterController, ClusterError, ControllerConfig, FaultPlan,
    FramedConn, Message, NodeConfig, ShardNode, WireCounters,
};
use lmm_engine::{BackendSpec, RankEngine, RankSnapshot};
use lmm_graph::delta::GraphDelta;
use lmm_graph::generator::CampusWebConfig;
use lmm_graph::sharding::ShardMap;
use lmm_graph::{DocGraph, DocId, SiteId};
use lmm_serve::{ServeConfig, ShardQuery, ShardedServer, SwapGrade};

fn campus(docs: usize, sites: usize) -> DocGraph {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = docs;
    cfg.n_sites = sites;
    cfg.spam_farms.clear();
    cfg.generate().unwrap()
}

fn engine_for(graph: &DocGraph) -> RankEngine {
    let mut engine = RankEngine::builder()
        .backend(BackendSpec::Incremental)
        .damping(0.85)
        .tolerance(1e-10)
        .threads(1)
        .build()
        .unwrap();
    engine.rank(graph).unwrap();
    engine
}

/// A churn delta: intra-site rewire every step, growth every 2nd step, a
/// cross-site link every 3rd — the same mix the serve-tier tests use, so
/// the cluster sees rebuild, refresh, and re-pin publish grades.
fn delta_for_step(graph: &DocGraph, step: usize) -> GraphDelta {
    let n_sites = graph.n_sites();
    let mut delta = GraphDelta::for_graph(graph);
    let mut site = (step * 5 + 1) % n_sites;
    while graph.site_size(SiteId(site)) < 3 {
        site = (site + 1) % n_sites;
    }
    let docs = graph.docs_of_site(SiteId(site));
    delta.remove_link(docs[0], docs[1]).unwrap();
    delta.add_link(docs[1], docs[2]).unwrap();
    delta.add_link(docs[2], docs[0]).unwrap();
    if step.is_multiple_of(2) {
        let target = SiteId((step * 7 + 2) % n_sites);
        let root = graph.docs_of_site(target)[0];
        let p = delta
            .add_page(target, &format!("http://cluster-grow-{step}.page/"))
            .unwrap();
        delta.add_link(root, p).unwrap();
        delta.add_link(p, root).unwrap();
    }
    if step.is_multiple_of(3) {
        let a = graph.docs_of_site(SiteId((step * 3 + 4) % n_sites))[0];
        let b = graph.docs_of_site(SiteId((step * 11 + 7) % n_sites))[0];
        delta.add_link(a, b).unwrap();
    }
    delta
}

fn fast_controller() -> ControllerConfig {
    ControllerConfig {
        heartbeat_interval: Duration::from_millis(40),
        miss_limit: 2,
        io_timeout: Duration::from_secs(2),
        auto_failover: true,
        retry: lmm_cluster::RetryPolicy {
            base: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            max_attempts: 5,
            ..lmm_cluster::RetryPolicy::default()
        },
        fault: None,
    }
}

/// Assert the over-the-wire answers are bit-equal to the in-process
/// tier's for the whole query surface, at the same rank epoch.
fn assert_parity(
    client: &ClusterClient,
    server: &ShardedServer,
    snapshot: &RankSnapshot,
    graph_docs: usize,
    graph_sites: usize,
) {
    let want_epoch = snapshot.epoch();

    let (le, local_top) = server.top_k(10).unwrap();
    let (re, remote_top) = client.top_k(10).unwrap();
    assert_eq!((le, re), (want_epoch, want_epoch));
    assert_eq!(local_top.len(), remote_top.len());
    for (l, r) in local_top.iter().zip(remote_top.iter()) {
        assert_eq!(l.0, r.0);
        assert_eq!(
            l.1.to_bits(),
            r.1.to_bits(),
            "top-k score drift at {:?}",
            l.0
        );
    }

    let batch: Vec<DocId> = (0..graph_docs.min(64)).map(DocId).collect();
    let (le, local_scores) = server.score_batch(&batch).unwrap();
    let (re, remote_scores) = client.score_batch(&batch).unwrap();
    assert_eq!((le, re), (want_epoch, want_epoch));
    for (i, (l, r)) in local_scores.iter().zip(remote_scores.iter()).enumerate() {
        assert_eq!(l.to_bits(), r.to_bits(), "score drift at doc {i}");
    }

    for site in 0..graph_sites {
        let local = server.top_k_for_site(SiteId(site), 5);
        let remote = client.top_k_for_site(SiteId(site), 5);
        match (local, remote) {
            (Ok((le, l)), Ok((re, r))) => {
                assert_eq!((le, re), (want_epoch, want_epoch));
                assert_eq!(l.len(), r.len(), "site {site} length drift");
                for (a, b) in l.iter().zip(r.iter()) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }
            (Err(_), Err(_)) => {}
            (l, r) => panic!("site {site}: local {l:?} vs remote {r:?}"),
        }
    }

    let (a, b) = (DocId(0), DocId(graph_docs / 2));
    let (le, local_ord) = server.compare(a, b).unwrap();
    let (re, remote_ord) = client.compare(a, b).unwrap();
    assert_eq!((le, re), (want_epoch, want_epoch));
    assert_eq!(local_ord, remote_ord);
}

#[test]
fn cluster_matches_in_process_tier_across_churn() {
    let mut graph = campus(400, 8);
    let mut engine = engine_for(&graph);
    let map = ShardMap::balanced(&graph, 4).unwrap();

    let controller = ClusterController::start(map.clone(), fast_controller()).unwrap();
    let nodes: Vec<ShardNode> = (0..2)
        .map(|_| ShardNode::start(controller.addr(), NodeConfig::default()).unwrap())
        .collect();
    controller
        .wait_for_nodes(2, Duration::from_secs(5))
        .unwrap();

    // Before the first publish the cluster must say so, typed.
    let client = ClusterClient::new(controller.addr(), ClientConfig::default());
    assert!(matches!(client.top_k(5), Err(ClusterError::NotPublished)));

    let snapshot = engine.snapshot().unwrap();
    let report = controller.publish(&snapshot).unwrap();
    assert_eq!(report.rank_epoch, snapshot.epoch());
    assert_eq!(report.nodes, 2);
    assert!(!report.noop);

    let server = ShardedServer::start(
        map,
        &snapshot,
        ServeConfig {
            heap_k: 64,
            max_gather_retries: 2,
            direct_reads: true,
        },
    )
    .unwrap();

    assert_parity(&client, &server, &snapshot, graph.n_docs(), graph.n_sites());

    // Re-publishing the identical rank epoch is an acknowledged no-op.
    assert!(controller.publish(&snapshot).unwrap().noop);

    // Churn: publish to both tiers, compare after every flip.
    for step in 0..4 {
        let delta = delta_for_step(&graph, step);
        let (mutated, _) = graph.apply(&delta).unwrap();
        engine.apply_delta(&delta).unwrap();
        graph = mutated;

        let snapshot = engine.snapshot().unwrap();
        let report = controller.publish(&snapshot).unwrap();
        assert_eq!(report.rank_epoch, snapshot.epoch());
        server.publish(&snapshot).unwrap();
        assert_parity(&client, &server, &snapshot, graph.n_docs(), graph.n_sites());
    }

    // Trait object surface: the cluster client is a ShardQuery tier too.
    let tier: &dyn ShardQuery<Error = ClusterError> = &client;
    assert_eq!(tier.serving_epoch(), engine.epoch());

    // Telemetry made it across the wire.
    let stats = controller.stats();
    assert_eq!(stats.rank_epoch, engine.epoch());
    assert_eq!(stats.nodes.len(), 2);
    assert!(stats.publishes >= 5);
    assert!(stats.doc_skew >= 1.0);
    let wired: Vec<_> = stats.nodes.iter().filter_map(|n| n.wire.as_ref()).collect();
    assert_eq!(wired.len(), 2);
    assert!(wired.iter().all(|w| w.commits >= 5 && w.bytes_recv > 0));
    let served: u64 = wired.iter().map(|w| w.queries).sum();
    assert!(served > 0, "nodes never saw a query");

    drop(client);
    controller.shutdown();
    for node in nodes {
        node.kill();
    }
}

#[test]
fn node_kill_evicts_fails_over_and_serving_survives() {
    let graph = campus(300, 8);
    let engine = engine_for(&graph);
    let map = ShardMap::balanced(&graph, 8).unwrap();

    let controller = ClusterController::start(map.clone(), fast_controller()).unwrap();
    let mut nodes: Vec<ShardNode> = (0..3)
        .map(|_| ShardNode::start(controller.addr(), NodeConfig::default()).unwrap())
        .collect();
    controller
        .wait_for_nodes(3, Duration::from_secs(5))
        .unwrap();

    let snapshot = engine.snapshot().unwrap();
    controller.publish(&snapshot).unwrap();
    let (cepoch_before, rank_before) = controller.epochs();

    let server = ShardedServer::start(
        map,
        &snapshot,
        ServeConfig {
            heap_k: 64,
            max_gather_retries: 2,
            direct_reads: true,
        },
    )
    .unwrap();
    let client = ClusterClient::new(controller.addr(), ClientConfig::default());
    assert_parity(&client, &server, &snapshot, graph.n_docs(), graph.n_sites());

    // Kill a node that provably owns shards, then hammer queries through
    // the eviction window: every response is either correct at the pinned
    // rank epoch or a *retriable* error — never wrong-epoch data.
    nodes.remove(0).kill();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut survived_early_queries = 0u64;
    while controller.epochs().0 == cepoch_before {
        assert!(
            Instant::now() < deadline,
            "controller never evicted the dead node"
        );
        match client.top_k(5) {
            Ok((epoch, top)) => {
                assert_eq!(epoch, rank_before, "wrong-epoch data during failover");
                let (_, want) = server.top_k(5).unwrap();
                assert_eq!(top.len(), want.len());
                for (a, b) in top.iter().zip(want.iter()) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
                survived_early_queries += 1;
            }
            Err(err) => assert!(err.is_retriable(), "non-retriable during failover: {err}"),
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Failover bumped the *cluster* epoch but re-published the *same*
    // pinned rank snapshot — the ranking the world sees is unchanged.
    let (cepoch_after, rank_after) = controller.epochs();
    assert!(cepoch_after > cepoch_before);
    assert_eq!(rank_after, rank_before);
    assert_eq!(controller.n_nodes(), 2);

    // Full surface parity again, now served entirely by the survivors.
    assert_parity(&client, &server, &snapshot, graph.n_docs(), graph.n_sites());

    let stats = controller.stats();
    assert!(stats.evictions >= 1, "eviction not counted");
    assert!(stats.failovers >= 1, "failover not counted");
    assert!(stats.missed_heartbeats >= 1);
    assert_eq!(stats.nodes.len(), 2);
    // All 8 shard ranges are still owned: a full top-k gather succeeds
    // and covers every document.
    let all: Vec<DocId> = (0..graph.n_docs()).map(DocId).collect();
    let (epoch, scores) = client.score_batch(&all).unwrap();
    assert_eq!(epoch, rank_before);
    assert_eq!(scores.len(), all.len());
    let _ = survived_early_queries; // informational; may be 0 on slow CI

    drop(client);
    controller.shutdown();
    for node in nodes {
        node.kill();
    }
}

/// The shard ids `node` currently serves, read over the wire.
fn shards_of(controller: &ClusterController, node: u64) -> BTreeSet<u64> {
    controller
        .stats()
        .nodes
        .iter()
        .find(|n| n.node == node)
        .and_then(|n| n.wire.as_ref())
        .map(|w| w.shard_docs.iter().map(|&(s, _)| s).collect())
        .unwrap_or_default()
}

#[test]
fn killed_node_rejoins_and_serves_its_original_shards() {
    let graph = campus(300, 8);
    let engine = engine_for(&graph);
    let map = ShardMap::balanced(&graph, 8).unwrap();

    let controller = ClusterController::start(map, fast_controller()).unwrap();
    let mut nodes: Vec<ShardNode> = (0..3)
        .map(|_| ShardNode::start(controller.addr(), NodeConfig::default()).unwrap())
        .collect();
    controller
        .wait_for_nodes(3, Duration::from_secs(5))
        .unwrap();

    let snapshot = engine.snapshot().unwrap();
    controller.publish(&snapshot).unwrap();
    let rank_epoch = snapshot.epoch();

    let victim = nodes.remove(0);
    let victim_id = victim.node_id();
    let original = shards_of(&controller, victim_id);
    assert!(!original.is_empty(), "victim owned no shards");

    let client = ClusterClient::new(controller.addr(), ClientConfig::default());

    // Kill it: heartbeats evict, failover republishes onto survivors.
    let cepoch0 = controller.epochs().0;
    victim.kill();
    let deadline = Instant::now() + Duration::from_secs(10);
    while controller.epochs().0 == cepoch0 || controller.n_nodes() != 2 {
        assert!(Instant::now() < deadline, "failover never completed");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (cepoch1, rank1) = controller.epochs();
    assert_eq!(rank1, rank_epoch, "failover touched the rank epoch");

    // Warm the client's placement cache at the failover epoch so the
    // rejoin republish below provably invalidates it via `NotOwner`.
    client.top_k(5).unwrap();

    // Restart under the prior id: the controller re-admits it and the
    // catch-up republish hands its original shards back.
    let returned = ShardNode::restart(controller.addr(), victim_id, NodeConfig::default()).unwrap();
    assert_eq!(returned.node_id(), victim_id);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(
            Instant::now() < deadline,
            "rejoin catch-up never restored the original shard range"
        );
        if controller.epochs().0 > cepoch1 && shards_of(&controller, victim_id) == original {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let (_, rank2) = controller.epochs();
    assert_eq!(rank2, rank_epoch, "rejoin touched the rank epoch");
    assert_eq!(controller.n_nodes(), 3);

    // The full surface still answers, at the unchanged rank epoch, with
    // the returned node serving its shards — and the client crossed the
    // move by evicting its stale placement, not by erroring.
    let all: Vec<DocId> = (0..graph.n_docs()).map(DocId).collect();
    let (epoch, scores) = client.score_batch(&all).unwrap();
    assert_eq!(epoch, rank_epoch);
    assert_eq!(scores.len(), all.len());
    assert!(returned.local_stats().queries > 0 || client.top_k(5).is_ok());
    assert!(
        client.stats().placement_evictions >= 1,
        "stale placement was never evicted: {:?}",
        client.stats()
    );
    let stats = controller.stats();
    assert!(stats.rejoins >= 1, "rejoin not counted");
    assert!(stats.evictions >= 1, "eviction not counted");

    drop(client);
    controller.shutdown();
    nodes.push(returned);
    for node in nodes {
        node.kill();
    }
}

#[test]
fn mid_publish_death_aborts_survivors_and_dead_epoch_never_serves() {
    let mut graph = campus(200, 6);
    let mut engine = engine_for(&graph);
    let map = ShardMap::balanced(&graph, 6).unwrap();

    // Slow heartbeats + no auto-failover: the dead node stays registered
    // until the publish itself trips over it, which is the scenario under
    // test (death in the stage/commit gap, not death noticed beforehand).
    let cfg = ControllerConfig {
        heartbeat_interval: Duration::from_millis(500),
        miss_limit: 20,
        auto_failover: false,
        ..fast_controller()
    };
    let controller = ClusterController::start(map, cfg).unwrap();
    let survivor = ShardNode::start(controller.addr(), NodeConfig::default()).unwrap();
    let casualty = ShardNode::start(controller.addr(), NodeConfig::default()).unwrap();
    controller
        .wait_for_nodes(2, Duration::from_secs(5))
        .unwrap();

    let snap1 = engine.snapshot().unwrap();
    controller.publish(&snap1).unwrap();
    let (cepoch, _) = controller.epochs();

    // Kill one node, then publish *new* data: attempt one stages on the
    // survivor, fails on the casualty, aborts the survivor's staged set,
    // and retries — burning the attempt's epoch forever.
    casualty.kill();
    let delta = delta_for_step(&graph, 1);
    let (mutated, _) = graph.apply(&delta).unwrap();
    engine.apply_delta(&delta).unwrap();
    graph = mutated;
    let snap2 = engine.snapshot().unwrap();
    let report = controller.publish(&snap2).unwrap();
    assert!(report.attempts >= 2, "publish never saw the death");

    let aborted_epoch = cepoch + 1;
    let (cepoch_after, rank_after) = controller.epochs();
    assert!(cepoch_after > aborted_epoch, "the aborted epoch was reused");
    assert_eq!(rank_after, snap2.epoch());

    // The survivor recorded the abort and serves only the final epoch.
    let stats = survivor.local_stats();
    assert!(stats.aborted >= 1, "survivor never saw the abort");
    assert_eq!(stats.epoch, cepoch_after);
    assert!(controller.stats().publish_aborts >= 1);

    // And it refuses the dead epoch outright — a resurrected (or
    // confused) controller cannot stage or commit it later.
    let mut conn = FramedConn::connect(
        survivor.addr(),
        Duration::from_secs(2),
        Arc::new(WireCounters::default()),
    )
    .unwrap();
    let reply = conn
        .call(&Message::Commit {
            epoch: aborted_epoch,
            rank_epoch: snap2.epoch(),
        })
        .unwrap();
    assert!(
        matches!(reply, Message::Bad { .. }),
        "dead epoch committed: {reply:?}"
    );
    let reply = conn
        .call(&Message::Stage {
            epoch: aborted_epoch,
            shard: 0,
            grade: SwapGrade::Repin,
            segment: None,
        })
        .unwrap();
    assert!(
        matches!(reply, Message::Bad { .. }),
        "dead epoch restaged: {reply:?}"
    );
    let _ = graph;

    controller.shutdown();
    survivor.kill();
}

#[test]
fn exhausted_publish_burns_its_epochs_and_survivors_stay_admitted() {
    let mut graph = campus(200, 6);
    let mut engine = engine_for(&graph);
    let map = ShardMap::balanced(&graph, 6).unwrap();

    // Zero publish retries and a sleepy failure detector: the first
    // publish after the kill must *exhaust* its budget (aborting the
    // survivor's staged epoch on the way out) rather than retry to
    // success, and nothing in the background may clean up after it.
    let cfg = ControllerConfig {
        heartbeat_interval: Duration::from_millis(500),
        miss_limit: 20,
        auto_failover: false,
        retry: lmm_cluster::RetryPolicy {
            max_attempts: 0,
            ..lmm_cluster::RetryPolicy::default()
        },
        ..fast_controller()
    };
    let controller = ClusterController::start(map, cfg).unwrap();
    let survivor = ShardNode::start(controller.addr(), NodeConfig::default()).unwrap();
    let casualty = ShardNode::start(controller.addr(), NodeConfig::default()).unwrap();
    controller
        .wait_for_nodes(2, Duration::from_secs(5))
        .unwrap();

    let snap1 = engine.snapshot().unwrap();
    controller.publish(&snap1).unwrap();

    casualty.kill();
    let delta = delta_for_step(&graph, 1);
    let (mutated, _) = graph.apply(&delta).unwrap();
    engine.apply_delta(&delta).unwrap();
    graph = mutated;
    let snap2 = engine.snapshot().unwrap();
    match controller.publish(&snap2) {
        Err(ClusterError::RetryExhausted { op: "publish", .. }) => {}
        other => panic!("expected publish retry exhaustion, got {other:?}"),
    }
    assert!(
        survivor.local_stats().aborted >= 1,
        "survivor never saw the abort"
    );
    assert_eq!(controller.n_nodes(), 1, "survivor was evicted");

    // The burnt attempt epoch is persisted in controller state: the next
    // publish must start above the survivor's `last_aborted` watermark,
    // succeed, and keep the survivor registered — not mistake the
    // survivor's "epoch was aborted" refusal for node death and brick
    // the whole registry.
    let report = controller.publish(&snap2).unwrap();
    assert_eq!(report.rank_epoch, snap2.epoch());
    assert_eq!(report.nodes, 1);
    assert_eq!(controller.n_nodes(), 1, "survivor was evicted on retry");
    assert_eq!(survivor.epochs(), (controller.epochs().0, snap2.epoch()));

    // And the cluster actually serves the new epoch end to end.
    let client = ClusterClient::new(controller.addr(), ClientConfig::default());
    let (epoch, top) = client.top_k(5).unwrap();
    assert_eq!(epoch, snap2.epoch());
    assert!(!top.is_empty());
    let _ = graph;

    drop(client);
    controller.shutdown();
    survivor.kill();
}

#[test]
fn rejoin_with_a_live_node_id_is_refused() {
    let graph = campus(120, 4);
    let map = ShardMap::balanced(&graph, 2).unwrap();
    let controller = ClusterController::start(map, fast_controller()).unwrap();
    let node = ShardNode::start(controller.addr(), NodeConfig::default()).unwrap();
    controller
        .wait_for_nodes(1, Duration::from_secs(5))
        .unwrap();
    let id = node.node_id();
    let addr_before = controller.stats().nodes[0].addr.clone();

    // A spurious Rejoin claiming a registered-and-answering node's id
    // from some other address must not hijack it.
    let mut conn = FramedConn::connect(
        controller.addr(),
        Duration::from_secs(2),
        Arc::new(WireCounters::default()),
    )
    .unwrap();
    let reply = conn
        .call(&Message::Rejoin {
            node: id,
            addr: "127.0.0.1:1".into(),
        })
        .unwrap();
    assert!(
        matches!(reply, Message::Bad { .. }),
        "live id hijacked: {reply:?}"
    );
    let stats = controller.stats();
    assert_eq!(stats.rejoins_rejected, 1, "refusal not counted");
    assert_eq!(stats.rejoins, 0);
    assert_eq!(controller.n_nodes(), 1);
    assert_eq!(
        stats.nodes[0].addr, addr_before,
        "live node's address was overwritten"
    );

    // A re-sent Rejoin from the node's *own* address (a retry after a
    // lost reply) is idempotent, not a hijack.
    let reply = conn
        .call(&Message::Rejoin {
            node: id,
            addr: addr_before.clone(),
        })
        .unwrap();
    assert!(
        matches!(reply, Message::Registered { node } if node == id),
        "idempotent rejoin refused: {reply:?}"
    );
    assert_eq!(controller.n_nodes(), 1);

    controller.shutdown();
    node.kill();
}

#[test]
fn staged_epochs_expire_by_ttl_when_the_commit_never_arrives() {
    let graph = campus(120, 4);
    let map = ShardMap::balanced(&graph, 2).unwrap();
    let controller = ClusterController::start(map, fast_controller()).unwrap();
    let node = ShardNode::start(
        controller.addr(),
        NodeConfig {
            stage_ttl: Duration::from_millis(50),
            ..NodeConfig::default()
        },
    )
    .unwrap();

    // Pose as a publishing controller that dies in the stage/commit gap.
    let mut conn = FramedConn::connect(
        node.addr(),
        Duration::from_secs(2),
        Arc::new(WireCounters::default()),
    )
    .unwrap();
    let stage = |conn: &mut FramedConn, epoch: u64| {
        conn.call(&Message::Stage {
            epoch,
            shard: 0,
            grade: SwapGrade::Repin,
            segment: None,
        })
        .unwrap()
    };
    assert!(matches!(stage(&mut conn, 7), Message::Ack { epoch: 7 }));
    std::thread::sleep(Duration::from_millis(120));
    // The set outlived its TTL: a late commit must be refused.
    let reply = conn
        .call(&Message::Commit {
            epoch: 7,
            rank_epoch: 1,
        })
        .unwrap();
    assert!(
        matches!(reply, Message::Bad { .. }),
        "expired stage committed: {reply:?}"
    );
    assert!(node.local_stats().staged_expired >= 1);

    // Heartbeats double as the GC tick: an abandoned set is collected
    // even if no commit (or further stage) ever arrives.
    assert!(matches!(stage(&mut conn, 9), Message::Ack { epoch: 9 }));
    std::thread::sleep(Duration::from_millis(120));
    let reply = conn.call(&Message::Ping { seq: 1 }).unwrap();
    assert!(matches!(reply, Message::Pong { .. }));
    assert!(node.local_stats().staged_expired >= 2);

    // And the node's own idle-poll tick collects with *no* inbound
    // traffic at all — a controller that dies right after staging (so no
    // heartbeats ever arrive again) must not pin the segments in node
    // memory indefinitely. `local_stats` reads in-process, not over the
    // wire, so nothing below touches the socket.
    assert!(matches!(stage(&mut conn, 11), Message::Ack { epoch: 11 }));
    drop(conn);
    let deadline = Instant::now() + Duration::from_secs(5);
    while node.local_stats().staged_expired < 3 {
        assert!(
            Instant::now() < deadline,
            "idle-poll tick never reclaimed the orphaned staged set"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    controller.shutdown();
    node.kill();
}

#[test]
fn slow_but_alive_node_is_not_spuriously_evicted() {
    let graph = campus(120, 4);
    let map = ShardMap::balanced(&graph, 2).unwrap();
    let cfg = ControllerConfig {
        heartbeat_interval: Duration::from_millis(40),
        miss_limit: 2,
        io_timeout: Duration::from_millis(500),
        ..fast_controller()
    };
    let controller = ClusterController::start(map, cfg).unwrap();
    // Every frame this node touches is delayed well past the heartbeat
    // interval but well under `io_timeout`: slow, never silent. The
    // failure detector must tell the difference.
    let node = ShardNode::start(
        controller.addr(),
        NodeConfig {
            fault: Some(FaultPlan {
                delay_per_mille: 1000,
                recv_delay_per_mille: 1000,
                delay: Duration::from_millis(60),
                ..FaultPlan::quiet(0xBEA7)
            }),
            ..NodeConfig::default()
        },
    )
    .unwrap();
    controller
        .wait_for_nodes(1, Duration::from_secs(5))
        .unwrap();
    // Over ~17 heartbeat intervals every probe is slow; none may be
    // counted as death.
    std::thread::sleep(Duration::from_millis(700));
    assert_eq!(controller.n_nodes(), 1, "slow node was evicted");
    let stats = controller.stats();
    assert_eq!(stats.evictions, 0, "slow node was evicted");

    controller.shutdown();
    node.kill();
}

#[test]
fn stale_publish_is_rejected_and_newer_snapshot_wins() {
    let mut graph = campus(200, 6);
    let mut engine = engine_for(&graph);
    let map = ShardMap::balanced(&graph, 3).unwrap();

    let controller = ClusterController::start(map, fast_controller()).unwrap();
    let node = ShardNode::start(controller.addr(), NodeConfig::default()).unwrap();
    controller
        .wait_for_nodes(1, Duration::from_secs(5))
        .unwrap();

    let old = engine.snapshot().unwrap();
    let delta = delta_for_step(&graph, 1);
    let (mutated, _) = graph.apply(&delta).unwrap();
    engine.apply_delta(&delta).unwrap();
    graph = mutated;
    let new = engine.snapshot().unwrap();

    controller.publish(&new).unwrap();
    match controller.publish(&old) {
        Err(ClusterError::StalePublish { published, pinned }) => {
            assert_eq!(published, old.epoch());
            assert_eq!(pinned, new.epoch());
        }
        other => panic!("stale publish accepted: {other:?}"),
    }
    assert_eq!(controller.epochs().1, new.epoch());
    let _ = graph;

    controller.shutdown();
    node.kill();
}
