//! # `lmm-cluster` — the remote shard fabric
//!
//! PR 5's sharded serving tier (`lmm-serve`) proved the epoch-consistent
//! snapshot hot-swap *in one process*. This crate runs the same protocol
//! **across processes over TCP** — the deployment shape the paper's
//! distributed ranking architectures actually imply: every site (or
//! range of sites) served by its own node, coordinated only through
//! epoch-tagged messages.
//!
//! ```text
//!                        ┌──────────────────┐
//!        Register/Ping   │ ClusterController │  pins RankSnapshot R
//!      ┌────────────────►│  registry + map   │  places shards → nodes
//!      │                 └───┬───────────┬───┘
//!      │   Stage(C+1,seg)    │           │    Placement / Routing
//!      │   Commit(C+1,R)     │           ▼
//! ┌────┴──────┐        ┌─────┴─────┐  ┌──────────────┐
//! │ ShardNode │  ...   │ ShardNode │  │ ClusterClient │
//! │ shards 0‑1│        │ shards 6‑7│◄─┤ scatter/gather│
//! └───────────┘        └───────────┘  └──────────────┘
//! ```
//!
//! Three roles, all std-only (no async runtime, no serde — a hand-rolled
//! length-prefixed codec in [`wire`]):
//!
//! * [`ShardNode`] owns `ShardState`s behind a `TcpListener`: registers,
//!   heartbeats, stages snapshot segments, and answers queries tagged
//!   with its committed **cluster epoch** and **rank epoch**.
//! * [`ClusterController`] owns the node registry and the placement map,
//!   evicts nodes on missed heartbeats, and drives the **two-phase
//!   publish**: stage per-shard [`SnapshotSegment`]s (graded
//!   rebuild/refresh/repin by the *same* `publish_grades` the in-process
//!   tier uses), then commit the epoch flip only after every ack. On a
//!   node death it reassigns the lost shards to survivors, rebuilds them
//!   from its pinned snapshot, and bumps the cluster epoch.
//! * [`ClusterClient`] is the `ShardedServer` query surface over the
//!   wire, with the same consistency contract: one epoch per response,
//!   straddling gathers retry then escalate, dead nodes surface as
//!   retriable [`ClusterError::NodeUnavailable`] — never wrong-epoch
//!   data.
//!
//! Scores cross the wire as IEEE-754 bit patterns, so a cluster answer
//! is **bitwise identical** to the in-process tier's at the same epoch —
//! `exp_cluster` in `lmm-bench` asserts exactly that, across live churn
//! and a mid-run node kill.
//!
//! [`SnapshotSegment`]: lmm_engine::SnapshotSegment

pub mod client;
pub mod controller;
pub mod error;
pub mod node;
pub mod retry;
pub mod transport;
pub mod wire;

pub use client::{ClientConfig, ClientStats, ClusterClient};
pub use controller::{
    ClusterController, ClusterPublishReport, ClusterStats, ControllerConfig, NodeReport,
};
pub use error::{ClusterError, Result};
pub use node::{NodeConfig, ShardNode};
pub use retry::{RetryPolicy, RetrySchedule};
pub use transport::{FaultPlan, FramedConn, TransportError, WireCounters};
pub use wire::{
    decode_frame, decode_message, encode_frame, encode_message, Message, NodeWireStats, WireError,
    MAX_PAYLOAD, WIRE_VERSION,
};
