//! The cluster controller: node registry, shard placement, heartbeat
//! monitoring with missed-beat eviction, and the **two-phase,
//! epoch-coordinated publish** that keeps every remote answer
//! single-epoch.
//!
//! # The publish protocol
//!
//! A publish of rank snapshot `R` over cluster epoch `C` runs:
//!
//! 1. **Grade** every shard with the same [`publish_grades`] the
//!    in-process tier uses (rebuild / refresh / repin per the staleness
//!    contract), then force-rebuild any shard whose *owner* changed —
//!    a grade describes data movement, not placement movement.
//! 2. **Stage** (phase one): cut a [`SnapshotSegment`] per
//!    rebuild/refresh shard and ship it to the owning node at epoch
//!    `C+1`, in parallel across nodes. Nodes hold staged sets without
//!    serving them.
//! 3. **Commit** (phase two): only after *every* node acked its stages,
//!    tell each to flip to `C+1`. A node that fails either phase is
//!    evicted, every survivor gets an **`Abort(C+1)`** (the attempt's
//!    epoch is burnt, never reused), and the whole publish backs off per
//!    the shared [`RetryPolicy`] then retries against the survivors at
//!    `C+2` — commits are idempotent and restages supersede, so partial
//!    progress is harmless. Survivors the abort cannot reach expire the
//!    dead staged set by TTL on their own.
//!
//! Queries key their gather consistency on the cluster epoch, so during
//! the commit fan-out a client sees a mix of `C` and `C+1` and simply
//! retries; it never merges across the flip.
//!
//! # Failover
//!
//! The monitor thread pings every node each interval. A node missing
//! more than `miss_limit` beats is evicted; its shards are reassigned
//! round-robin to the survivors and re-staged as **rebuilds cut from the
//! controller's pinned snapshot** under a bumped cluster epoch — the
//! same rank epoch, republished. Clients in flight get retriable
//! `NodeUnavailable` / epoch-mismatch retries, never wrong-epoch data.
//!
//! # Restart & rejoin
//!
//! A restarted node announces itself with `Rejoin { node, addr }` and is
//! re-admitted **under its prior id**. The eviction recorded its shard
//! claim, so the catch-up republish (same rank epoch, bumped cluster
//! epoch) hands its old shards back — restoring the pre-failure balance
//! instead of leaving them piled on survivors — and, because the
//! returner is marked *fresh*, stages them as full rebuilds cut from the
//! pinned snapshot.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lmm_engine::{RankSnapshot, SnapshotSegment};
use lmm_graph::sharding::ShardMap;
use lmm_serve::{publish_grades, shard_site_range, SwapGrade};

use crate::error::{ClusterError, Result};
use crate::retry::RetryPolicy;
use crate::transport::{FaultPlan, FramedConn, WireCounters};
use crate::wire::{Message, NodeWireStats};

/// Controller tuning knobs.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Heartbeat probe interval. Together with
    /// [`ControllerConfig::miss_limit`] this sets the failure-detection
    /// horizon: a node is declared dead only after `miss_limit + 1`
    /// consecutive intervals without a `Pong`, so a slow-but-alive node
    /// (delays under `io_timeout`) is never spuriously evicted.
    pub heartbeat_interval: Duration,
    /// Consecutive missed beats after which a node is evicted.
    pub miss_limit: u32,
    /// Read/write/connect timeout on every controller connection.
    pub io_timeout: Duration,
    /// Evict-and-reassign automatically from the monitor thread. Tests
    /// that want to drive failover by hand can turn this off.
    pub auto_failover: bool,
    /// Retry discipline shared by publish machinery: per-node stage and
    /// commit calls retry transient transport faults (with a tight
    /// attempt cap) before the node is declared failed, and whole-publish
    /// attempts back off between retries instead of hammering survivors.
    pub retry: RetryPolicy,
    /// Optional deterministic fault injection on controller sends.
    pub fault: Option<FaultPlan>,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            heartbeat_interval: Duration::from_millis(75),
            miss_limit: 3,
            io_timeout: Duration::from_secs(2),
            auto_failover: true,
            retry: RetryPolicy::default(),
            fault: None,
        }
    }
}

/// One registered node, as the controller sees it.
#[derive(Debug, Clone)]
struct NodeEntry {
    addr: String,
    missed: u32,
    rtt_us: u64,
    last_fanout_ms: f64,
}

#[derive(Default)]
struct ControlState {
    next_node: u64,
    nodes: BTreeMap<u64, NodeEntry>,
    /// `placement[shard]` = owning node id. Empty until the first publish.
    placement: Vec<u64>,
    cepoch: u64,
    /// Highest cluster epoch any publish attempt has ever staged at,
    /// including attempts that failed and were aborted. Survivors of a
    /// failed attempt remember it as their `last_aborted` watermark and
    /// refuse stage/commit at or below it — so the next attempt must
    /// start strictly above every number ever handed out, even across a
    /// publish that exhausted its retry budget (where `cepoch` itself
    /// never advanced).
    burnt: u64,
    rank_epoch: u64,
    pinned: Option<RankSnapshot>,
    /// Shard claims of evicted nodes, keyed by node id: if the node
    /// rejoins, placement hands its old shards back (restoring the
    /// pre-failure balance) instead of leaving them piled on survivors.
    /// A claim is dropped once a publish applies it; an eviction strips
    /// its shards from all older claims, so each shard has one claimant.
    former: BTreeMap<u64, Vec<u64>>,
    /// Nodes that (re)joined with no serving state since the last
    /// successful publish that placed them — every shard placed on a
    /// fresh node is force-rebuilt, never repinned or refreshed.
    fresh: BTreeSet<u64>,
}

struct ControllerInner {
    map: ShardMap,
    cfg: ControllerConfig,
    addr: String,
    shutdown: AtomicBool,
    state: Mutex<ControlState>,
    /// Serializes publishes and failovers. Lock order: this, then `state`.
    publish_gate: Mutex<()>,
    counters: Arc<WireCounters>,
    /// Background catch-up publishes spawned by rejoins; joined at
    /// shutdown.
    aux: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
    publishes: AtomicU64,
    evictions: AtomicU64,
    failovers: AtomicU64,
    missed_heartbeats: AtomicU64,
    rejoins: AtomicU64,
    rejoins_rejected: AtomicU64,
    publish_aborts: AtomicU64,
}

/// Accounting of one cluster publish (or failover republish).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterPublishReport {
    /// The committed cluster epoch.
    pub epoch: u64,
    /// The rank epoch now served.
    pub rank_epoch: u64,
    /// Nodes that took part.
    pub nodes: usize,
    /// Shards rebuilt / refreshed / re-pinned, summed over nodes.
    pub rebuilt: usize,
    /// See [`ClusterPublishReport::rebuilt`].
    pub refreshed: usize,
    /// See [`ClusterPublishReport::rebuilt`].
    pub repinned: usize,
    /// Shards whose owner changed in this publish.
    pub reassigned: usize,
    /// Publish attempts (more than 1 means a node died mid-publish and
    /// was evicted on the way).
    pub attempts: usize,
    /// Slowest per-node stage fan-out, milliseconds.
    pub max_fanout_ms: f64,
    /// `true` when the snapshot was already served and nothing moved.
    pub noop: bool,
}

/// One node's row in [`ClusterStats`].
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Controller-assigned node id.
    pub node: u64,
    /// The node's listen address.
    pub addr: String,
    /// Consecutive missed heartbeats right now.
    pub missed: u32,
    /// Last measured heartbeat round-trip, microseconds.
    pub rtt_us: u64,
    /// Stage fan-out time of the last publish that reached this node,
    /// milliseconds.
    pub last_fanout_ms: f64,
    /// The node's own counters (`None` if it did not answer).
    pub wire: Option<NodeWireStats>,
}

/// A cluster-wide statistics snapshot.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Committed cluster epoch.
    pub epoch: u64,
    /// Served rank epoch.
    pub rank_epoch: u64,
    /// Successful publishes (including failover republishes).
    pub publishes: u64,
    /// Nodes evicted over the controller's lifetime.
    pub evictions: u64,
    /// Failover republishes triggered.
    pub failovers: u64,
    /// Heartbeats that went unanswered.
    pub missed_heartbeats: u64,
    /// Restarted nodes re-admitted under their prior id.
    pub rejoins: u64,
    /// Rejoin attempts refused because the claimed id was still live at
    /// a different address (identity-hijack guard).
    pub rejoins_rejected: u64,
    /// `Abort` messages delivered to survivors of failed publish
    /// attempts.
    pub publish_aborts: u64,
    /// Per-node rows, id-ordered.
    pub nodes: Vec<NodeReport>,
    /// Live-document skew across **all** cluster shards (max shard over
    /// mean, the `ServeStatsSnapshot::doc_skew` formula) — the dynamic
    /// resharding trigger signal, now cluster-wide.
    pub doc_skew: f64,
    /// Tombstone rejections summed over nodes.
    pub tombstone_rejections: u64,
    /// Bytes the controller wrote / read.
    pub controller_bytes: (u64, u64),
}

/// The running controller. Stop with [`ClusterController::shutdown`].
pub struct ClusterController {
    inner: Arc<ControllerInner>,
    threads: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ClusterController {
    /// Binds a loopback listener and starts the accept and monitor
    /// threads. `map` fixes the shard count and site boundaries for the
    /// controller's lifetime (growth clamps into the last shard, as in
    /// the in-process tier).
    ///
    /// # Errors
    /// [`ClusterError::InvalidConfig`] when the listener cannot bind or
    /// the heartbeat knobs are degenerate (zero interval, zero miss
    /// limit, or zero io timeout — each would make the failure detector
    /// either a busy-loop or a hair trigger).
    pub fn start(map: ShardMap, cfg: ControllerConfig) -> Result<Self> {
        if cfg.heartbeat_interval.is_zero() {
            return Err(ClusterError::InvalidConfig {
                reason: "heartbeat_interval must be positive".into(),
            });
        }
        if cfg.miss_limit == 0 {
            return Err(ClusterError::InvalidConfig {
                reason: "miss_limit must be at least 1 (a single dropped frame is not death)"
                    .into(),
            });
        }
        if cfg.io_timeout.is_zero() {
            return Err(ClusterError::InvalidConfig {
                reason: "io_timeout must be positive".into(),
            });
        }
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| ClusterError::InvalidConfig {
                reason: format!("cannot bind a loopback listener: {e}"),
            })?;
        let addr = listener
            .local_addr()
            .map_err(|e| ClusterError::InvalidConfig {
                reason: format!("listener has no local address: {e}"),
            })?
            .to_string();
        let inner = Arc::new(ControllerInner {
            map,
            cfg,
            addr,
            shutdown: AtomicBool::new(false),
            state: Mutex::new(ControlState::default()),
            publish_gate: Mutex::new(()),
            counters: Arc::new(WireCounters::default()),
            aux: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            missed_heartbeats: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            rejoins_rejected: AtomicU64::new(0),
            publish_aborts: AtomicU64::new(0),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let inner = Arc::clone(&inner);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&listener, &inner, &conns))
        };
        let monitor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || monitor_loop(&inner))
        };
        Ok(Self {
            inner,
            threads: vec![accept, monitor],
            conns,
        })
    }

    /// The controller's listen address (`ip:port`).
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.inner.addr
    }

    /// The committed `(cluster epoch, rank epoch)` pair.
    #[must_use]
    pub fn epochs(&self) -> (u64, u64) {
        let state = lock_clean(&self.inner.state);
        (state.cepoch, state.rank_epoch)
    }

    /// Registered (live) node count.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        lock_clean(&self.inner.state).nodes.len()
    }

    /// Blocks until at least `n` nodes registered.
    ///
    /// # Errors
    /// [`ClusterError::NoNodes`] on timeout.
    pub fn wait_for_nodes(&self, n: usize, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        while self.n_nodes() < n {
            if Instant::now() >= deadline {
                return Err(ClusterError::NoNodes);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }

    /// Publishes a snapshot cluster-wide: stage everywhere, then commit,
    /// bumping the cluster epoch. Nodes that fail mid-publish are evicted
    /// and the publish retries against survivors.
    ///
    /// # Errors
    /// [`ClusterError::NoNodes`] with an empty registry;
    /// [`ClusterError::StalePublish`] for an epoch older than the pinned
    /// one; [`ClusterError::PublishFailed`] when every attempt failed.
    pub fn publish(&self, snapshot: &RankSnapshot) -> Result<ClusterPublishReport> {
        let _gate = self
            .inner
            .publish_gate
            .lock()
            .map_err(|_| ClusterError::PublishFailed {
                detail: "publish gate poisoned".into(),
            })?;
        {
            let state = lock_clean(&self.inner.state);
            if state.pinned.is_some() {
                if snapshot.epoch() < state.rank_epoch {
                    return Err(ClusterError::StalePublish {
                        published: snapshot.epoch(),
                        pinned: state.rank_epoch,
                    });
                }
                if snapshot.epoch() == state.rank_epoch {
                    return Ok(ClusterPublishReport {
                        epoch: state.cepoch,
                        rank_epoch: state.rank_epoch,
                        nodes: state.nodes.len(),
                        rebuilt: 0,
                        refreshed: 0,
                        repinned: 0,
                        reassigned: 0,
                        attempts: 0,
                        max_fanout_ms: 0.0,
                        noop: true,
                    });
                }
            }
        }
        self.inner.publish_locked(snapshot)
    }

    /// Evicts dead placements and republishes the pinned snapshot under a
    /// bumped cluster epoch. Called automatically by the monitor when
    /// `auto_failover` is on; public so tests and operators can force it.
    ///
    /// # Errors
    /// [`ClusterError::NoNodes`] when no survivors remain;
    /// [`ClusterError::NotPublished`] before any publish.
    pub fn failover(&self) -> Result<ClusterPublishReport> {
        self.inner.failover()
    }

    /// Gathers cluster-wide statistics, dialing every node for its
    /// counters (unreachable nodes report `wire: None`).
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        let inner = &self.inner;
        let (epoch, rank_epoch, rows): (u64, u64, Vec<(u64, NodeEntry)>) = {
            let state = lock_clean(&inner.state);
            (
                state.cepoch,
                state.rank_epoch,
                state.nodes.iter().map(|(&id, e)| (id, e.clone())).collect(),
            )
        };
        let mut nodes = Vec::with_capacity(rows.len());
        let mut shard_docs: Vec<u64> = Vec::new();
        let mut tombstones = 0u64;
        for (id, entry) in rows {
            let wire = inner
                .dial(&entry.addr)
                .and_then(|mut conn| conn.call(&Message::StatsReq).map_err(|_| ()))
                .ok()
                .and_then(|reply| match reply {
                    Message::Stats(stats) => Some(stats),
                    _ => None,
                });
            if let Some(stats) = &wire {
                tombstones += stats.tombstone_rejections;
                shard_docs.extend(stats.shard_docs.iter().map(|&(_, d)| d));
            }
            nodes.push(NodeReport {
                node: id,
                addr: entry.addr,
                missed: entry.missed,
                rtt_us: entry.rtt_us,
                last_fanout_ms: entry.last_fanout_ms,
                wire,
            });
        }
        let doc_skew = lmm_serve::ServeStatsSnapshot {
            shard_docs,
            ..Default::default()
        }
        .doc_skew();
        ClusterStats {
            epoch,
            rank_epoch,
            publishes: inner.publishes.load(Ordering::Relaxed),
            evictions: inner.evictions.load(Ordering::Relaxed),
            failovers: inner.failovers.load(Ordering::Relaxed),
            missed_heartbeats: inner.missed_heartbeats.load(Ordering::Relaxed),
            rejoins: inner.rejoins.load(Ordering::Relaxed),
            rejoins_rejected: inner.rejoins_rejected.load(Ordering::Relaxed),
            publish_aborts: inner.publish_aborts.load(Ordering::Relaxed),
            nodes,
            doc_skew,
            tombstone_rejections: tombstones,
            controller_bytes: inner.counters.totals(),
        }
    }

    /// Stops the controller and joins its threads.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *lock_clean(&self.conns));
        for handle in handles {
            let _ = handle.join();
        }
        let aux = std::mem::take(&mut *lock_clean(&self.inner.aux));
        for handle in aux {
            let _ = handle.join();
        }
    }
}

/// One node's work order within a publish attempt.
struct NodeJob {
    node: u64,
    addr: String,
    stages: Vec<(u64, SwapGrade, Option<SnapshotSegment>)>,
}

impl ControllerInner {
    fn dial(&self, addr: &str) -> std::result::Result<FramedConn, ()> {
        let conn = FramedConn::connect(addr, self.cfg.io_timeout, Arc::clone(&self.counters))
            .map_err(|_| ())?;
        Ok(match &self.cfg.fault {
            Some(plan) => conn.with_faults(Arc::new(
                plan.injector(self.next_conn.fetch_add(1, Ordering::Relaxed)),
            )),
            None => conn,
        })
    }

    /// The publish loop. Caller holds the publish gate.
    fn publish_locked(&self, snapshot: &RankSnapshot) -> Result<ClusterPublishReport> {
        let mut attempts = 0usize;
        let mut schedule = self.cfg.retry.begin(snapshot.epoch() ^ 0x0B11_5EED);
        loop {
            attempts += 1;
            // --- plan under the state lock -------------------------------
            let (next_epoch, placement, jobs, reassigned, counts, claimed, fresh_used) = {
                let mut state = lock_clean(&self.state);
                if state.nodes.is_empty() {
                    return Err(ClusterError::NoNodes);
                }
                // Burn this attempt's epoch *now*, while planning: whether
                // the attempt commits, aborts, or dies silently, the
                // number is never reused, so an `Abort` at it is final and
                // a later publish always starts above every survivor's
                // `last_aborted` watermark.
                let next_epoch = state.cepoch.max(state.burnt) + 1;
                state.burnt = next_epoch;
                let survivors: Vec<u64> = state.nodes.keys().copied().collect();
                let n_shards = self.map.n_shards();
                // Claims of evicted-then-rejoined nodes: hand each such
                // shard back to its returning owner instead of leaving it
                // piled on whoever absorbed it at failover.
                let mut claims: HashMap<u64, u64> = HashMap::new();
                let mut claimed: Vec<u64> = Vec::new();
                for (&node, shards) in &state.former {
                    if state.nodes.contains_key(&node) {
                        claimed.push(node);
                        for &shard in shards {
                            claims.insert(shard, node);
                        }
                    }
                }
                // Sticky placement: claimants win, then live owners keep
                // their shards, round-robin the rest over survivors (first
                // publish: contiguous ranges).
                let mut placement = vec![0u64; n_shards];
                let mut changed = vec![false; n_shards];
                if state.placement.is_empty() {
                    let owners = survivors.len().min(n_shards);
                    let ranges =
                        self.map
                            .owner_ranges(owners)
                            .map_err(|e| ClusterError::InvalidConfig {
                                reason: format!("owner ranges: {e}"),
                            })?;
                    for (owner, range) in ranges.into_iter().enumerate() {
                        for shard in range {
                            placement[shard] = survivors[owner];
                            changed[shard] = true;
                        }
                    }
                } else {
                    let mut cycle = survivors.iter().cycle();
                    for shard in 0..n_shards {
                        let prev = state.placement[shard];
                        if let Some(&claimant) = claims.get(&(shard as u64)) {
                            placement[shard] = claimant;
                            changed[shard] = claimant != prev;
                        } else if state.nodes.contains_key(&prev) {
                            placement[shard] = prev;
                        } else {
                            placement[shard] = *cycle.next().expect("survivors is non-empty");
                            changed[shard] = true;
                        }
                    }
                }
                // A fresh (just-rejoined) node holds no serving state, so
                // every shard placed on it must be a full rebuild even if
                // the grade or placement says otherwise.
                let fresh_used: Vec<u64> = state
                    .fresh
                    .iter()
                    .copied()
                    .filter(|id| placement.contains(id))
                    .collect();
                for shard in 0..n_shards {
                    if state.fresh.contains(&placement[shard]) {
                        changed[shard] = true;
                    }
                }
                // Grade data movement, then force-rebuild placement moves.
                let mut grades: Vec<SwapGrade> = if state.cepoch == 0 {
                    vec![SwapGrade::Rebuild; n_shards]
                } else if snapshot.epoch() == state.rank_epoch {
                    // Failover republish: identical data, new placement.
                    vec![SwapGrade::Repin; n_shards]
                } else {
                    publish_grades(&self.map, state.rank_epoch, snapshot)
                };
                let mut reassigned = 0usize;
                for shard in 0..n_shards {
                    if changed[shard] {
                        grades[shard] = SwapGrade::Rebuild;
                        reassigned += 1;
                    }
                }
                let counts = (
                    grades.iter().filter(|g| **g == SwapGrade::Rebuild).count(),
                    grades.iter().filter(|g| **g == SwapGrade::Refresh).count(),
                    grades.iter().filter(|g| **g == SwapGrade::Repin).count(),
                );
                // Cut segments while planning: clone cost is bounded by
                // the stale shards' sites, and we hold no node locks.
                let mut jobs: BTreeMap<u64, NodeJob> = BTreeMap::new();
                for shard in 0..n_shards {
                    let node = placement[shard];
                    let job = jobs.entry(node).or_insert_with(|| NodeJob {
                        node,
                        addr: state.nodes[&node].addr.clone(),
                        stages: Vec::new(),
                    });
                    let segment = match grades[shard] {
                        SwapGrade::Repin => None,
                        SwapGrade::Rebuild | SwapGrade::Refresh => Some(snapshot.export_segment(
                            shard_site_range(&self.map, shard, snapshot.n_sites()),
                        )),
                    };
                    job.stages.push((shard as u64, grades[shard], segment));
                }
                (
                    next_epoch,
                    placement,
                    jobs.into_values().collect::<Vec<_>>(),
                    reassigned,
                    counts,
                    claimed,
                    fresh_used,
                )
            };
            // --- phase one: stage, in parallel across nodes --------------
            let n_jobs = jobs.len();
            let mut fanouts: Vec<(u64, f64)> = Vec::with_capacity(n_jobs);
            let mut failed: Vec<(u64, String)> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(n_jobs);
                for job in &jobs {
                    handles.push(scope.spawn(move || {
                        let started = Instant::now();
                        self.stage_node(job, next_epoch)
                            .map(|()| (job.node, started.elapsed().as_secs_f64() * 1e3))
                            .map_err(|detail| (job.node, detail))
                    }));
                }
                for handle in handles {
                    match handle.join().expect("stage thread panicked") {
                        Ok(ok) => fanouts.push(ok),
                        Err(err) => failed.push(err),
                    }
                }
            });
            // --- phase two: commit only after every node staged ----------
            if failed.is_empty() {
                for job in &jobs {
                    if let Err(detail) = self.commit_node(job, next_epoch, snapshot.epoch()) {
                        failed.push((job.node, detail));
                    }
                }
            }
            if !failed.is_empty() {
                let detail = failed
                    .iter()
                    .map(|(node, d)| format!("node {node}: {d}"))
                    .collect::<Vec<_>>()
                    .join("; ");
                // This attempt's epoch is dead: tell every survivor to
                // drop its staged set so nothing can ever commit it (nodes
                // the abort cannot reach expire it by TTL instead).
                let failed_ids: BTreeSet<u64> = failed.iter().map(|(node, _)| *node).collect();
                self.abort_attempt(&jobs, &failed_ids, next_epoch);
                {
                    let mut state = lock_clean(&self.state);
                    for id in &failed_ids {
                        self.evict_locked(&mut state, *id);
                    }
                    if state.nodes.is_empty() {
                        return Err(ClusterError::PublishFailed { detail });
                    }
                }
                if schedule.backoff_and_retry() {
                    continue; // retry against survivors at the next epoch
                }
                return Err(ClusterError::RetryExhausted {
                    op: "publish",
                    attempts: schedule.attempts(),
                    detail,
                });
            }
            // --- success: commit the control state -----------------------
            let max_fanout_ms = fanouts.iter().fold(0.0f64, |acc, &(_, ms)| acc.max(ms));
            let mut state = lock_clean(&self.state);
            for (node, ms) in fanouts {
                if let Some(entry) = state.nodes.get_mut(&node) {
                    entry.last_fanout_ms = ms;
                }
            }
            state.cepoch = next_epoch;
            state.rank_epoch = snapshot.epoch();
            state.placement = placement;
            state.pinned = Some(snapshot.clone());
            // Only the claims and fresh flags this plan actually used are
            // consumed — a node that rejoined *mid-attempt* keeps its
            // flag for the catch-up publish that follows.
            for node in &claimed {
                state.former.remove(node);
            }
            for node in &fresh_used {
                state.fresh.remove(node);
            }
            self.publishes.fetch_add(1, Ordering::Relaxed);
            return Ok(ClusterPublishReport {
                epoch: next_epoch,
                rank_epoch: snapshot.epoch(),
                nodes: n_jobs,
                rebuilt: counts.0,
                refreshed: counts.1,
                repinned: counts.2,
                reassigned,
                attempts,
                max_fanout_ms,
                noop: false,
            });
        }
    }

    /// The tight per-node retry cap. Transient transport faults get a
    /// couple of quick retries with a fresh dial (both phases are
    /// idempotent: restages supersede, duplicate commits ack), but a node
    /// that keeps failing is declared dead fast — burning the *full*
    /// retry budget here would stretch every failover by the whole
    /// deadline.
    fn call_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            ..self.cfg.retry
        }
    }

    fn stage_node(&self, job: &NodeJob, epoch: u64) -> std::result::Result<(), String> {
        let mut schedule = self.call_policy().begin(epoch ^ job.node.rotate_left(32));
        loop {
            match self.try_stage(job, epoch) {
                Ok(()) => return Ok(()),
                Err(detail) => {
                    if !schedule.backoff_and_retry() {
                        return Err(detail);
                    }
                }
            }
        }
    }

    fn try_stage(&self, job: &NodeJob, epoch: u64) -> std::result::Result<(), String> {
        let mut conn = self
            .dial(&job.addr)
            .map_err(|()| format!("dial {}", job.addr))?;
        for (shard, grade, segment) in &job.stages {
            let reply = conn
                .call(&Message::Stage {
                    epoch,
                    shard: *shard,
                    grade: *grade,
                    segment: segment.clone(),
                })
                .map_err(|e| format!("stage shard {shard}: {e}"))?;
            match reply {
                Message::Ack { epoch: acked } if acked == epoch => {}
                other => return Err(format!("stage shard {shard} answered {other:?}")),
            }
        }
        Ok(())
    }

    fn commit_node(
        &self,
        job: &NodeJob,
        epoch: u64,
        rank_epoch: u64,
    ) -> std::result::Result<(), String> {
        let mut schedule = self
            .call_policy()
            .begin(epoch ^ job.node.rotate_left(32) ^ 0xC0);
        loop {
            match self.try_commit(job, epoch, rank_epoch) {
                Ok(()) => return Ok(()),
                Err(detail) => {
                    if !schedule.backoff_and_retry() {
                        return Err(detail);
                    }
                }
            }
        }
    }

    fn try_commit(
        &self,
        job: &NodeJob,
        epoch: u64,
        rank_epoch: u64,
    ) -> std::result::Result<(), String> {
        let mut conn = self
            .dial(&job.addr)
            .map_err(|()| format!("dial {}", job.addr))?;
        let reply = conn
            .call(&Message::Commit { epoch, rank_epoch })
            .map_err(|e| format!("commit: {e}"))?;
        match reply {
            Message::Ack { epoch: acked } if acked == epoch => Ok(()),
            other => Err(format!("commit answered {other:?}")),
        }
    }

    /// Best-effort `Abort` to every node of the attempt that did **not**
    /// fail it. Unreachable survivors are fine: the staged epoch also
    /// expires by TTL, and nodes refuse stage/commit at or below their
    /// last aborted epoch, so the dead epoch cannot resurrect either way.
    fn abort_attempt(&self, jobs: &[NodeJob], failed: &BTreeSet<u64>, epoch: u64) {
        for job in jobs {
            if failed.contains(&job.node) {
                continue;
            }
            let acked = self
                .dial(&job.addr)
                .ok()
                .and_then(|mut conn| conn.call(&Message::Abort { epoch }).ok())
                .is_some_and(|reply| matches!(reply, Message::Ack { .. }));
            if acked {
                self.publish_aborts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Removes a node from the registry, recording which shards it owned
    /// so a rejoin hands them back. Each shard has exactly one claimant:
    /// the newest eviction strips its shards from every older claim.
    fn evict_locked(&self, state: &mut ControlState, id: u64) {
        if state.nodes.remove(&id).is_none() {
            return;
        }
        self.evictions.fetch_add(1, Ordering::Relaxed);
        state.fresh.remove(&id);
        let owned: Vec<u64> = state
            .placement
            .iter()
            .enumerate()
            .filter(|&(_, &owner)| owner == id)
            .map(|(shard, _)| shard as u64)
            .collect();
        if owned.is_empty() {
            return;
        }
        for shards in state.former.values_mut() {
            shards.retain(|s| !owned.contains(s));
        }
        state.former.retain(|_, shards| !shards.is_empty());
        state.former.insert(id, owned);
    }

    /// Republishes the pinned snapshot under the gate — the shared tail
    /// of failover and rejoin catch-up. Same rank epoch, bumped cluster
    /// epoch.
    fn republish_pinned(&self) -> Result<ClusterPublishReport> {
        let _gate = self
            .publish_gate
            .lock()
            .map_err(|_| ClusterError::PublishFailed {
                detail: "publish gate poisoned".into(),
            })?;
        let pinned = {
            let state = lock_clean(&self.state);
            state.pinned.clone().ok_or(ClusterError::NotPublished)?
        };
        self.publish_locked(&pinned)
    }

    fn failover(&self) -> Result<ClusterPublishReport> {
        let report = self.republish_pinned()?;
        self.failovers.fetch_add(1, Ordering::Relaxed);
        Ok(report)
    }
}

fn accept_loop(
    listener: &TcpListener,
    inner: &Arc<ControllerInner>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(inner);
                let handle = std::thread::spawn(move || serve_conn(stream, &inner));
                lock_clean(conns).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

fn serve_conn(stream: TcpStream, inner: &Arc<ControllerInner>) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let Ok(mut conn) =
        FramedConn::from_stream(stream, inner.cfg.io_timeout, Arc::clone(&inner.counters))
    else {
        return;
    };
    loop {
        let msg = match conn.recv_idle(&mut || !inner.shutdown.load(Ordering::SeqCst)) {
            Ok(msg) => msg,
            Err(crate::transport::TransportError::Wire(e)) => {
                if conn
                    .send(&Message::Bad {
                        detail: e.to_string(),
                    })
                    .is_err()
                {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let reply = match msg {
            Message::Register { addr } => {
                let mut state = lock_clean(&inner.state);
                let node = state.next_node;
                state.next_node += 1;
                state.nodes.insert(
                    node,
                    NodeEntry {
                        addr,
                        missed: 0,
                        rtt_us: 0,
                        last_fanout_ms: 0.0,
                    },
                );
                Message::Registered { node }
            }
            Message::Rejoin { node, addr } => {
                // A restarted node comes back under its prior id with an
                // empty serving state. Re-admit it, mark it fresh (every
                // shard placed on it rebuilds), and catch it up in the
                // background by republishing the pinned snapshot — its
                // old shards come home via the `former` claim, under a
                // bumped cluster epoch but the *same* rank epoch.
                //
                // The id may still be in the registry: a fast restart
                // beats the heartbeat monitor to the eviction. That is
                // legal only if the prior incarnation is actually dead —
                // probe its old address (off-lock) and refuse the rejoin
                // when it still answers, so a duplicate or spurious
                // Rejoin cannot hijack a live node's identity. A re-sent
                // Rejoin from the *same* address (a retry after a lost
                // reply) is idempotent, not a hijack.
                let prior_addr = {
                    let state = lock_clean(&inner.state);
                    state.nodes.get(&node).map(|entry| entry.addr.clone())
                };
                let prior_alive = prior_addr.as_deref().is_some_and(|old| {
                    old != addr
                        && inner
                            .dial(old)
                            .ok()
                            .and_then(|mut conn| conn.call(&Message::Ping { seq: 0 }).ok())
                            .is_some_and(|reply| matches!(reply, Message::Pong { .. }))
                });
                if prior_alive {
                    inner.rejoins_rejected.fetch_add(1, Ordering::Relaxed);
                    Message::Bad {
                        detail: format!(
                            "rejoin refused: node {node} is still live at {}",
                            prior_addr.unwrap_or_default()
                        ),
                    }
                } else {
                    let has_pinned = {
                        let mut state = lock_clean(&inner.state);
                        state.next_node = state.next_node.max(node + 1);
                        state.nodes.insert(
                            node,
                            NodeEntry {
                                addr,
                                missed: 0,
                                rtt_us: 0,
                                last_fanout_ms: 0.0,
                            },
                        );
                        state.fresh.insert(node);
                        state.pinned.is_some()
                    };
                    inner.rejoins.fetch_add(1, Ordering::Relaxed);
                    if has_pinned {
                        let catcher = Arc::clone(inner);
                        let handle = std::thread::spawn(move || {
                            // NoNodes/NotPublished just mean the cluster
                            // moved on; real publish failures surface via
                            // stats.
                            let _ = catcher.republish_pinned();
                        });
                        // Reap finished catch-up threads while we are
                        // here, so a long-lived controller under churn
                        // does not hoard dead handles until shutdown.
                        let mut aux = lock_clean(&inner.aux);
                        aux.retain(|h| !h.is_finished());
                        aux.push(handle);
                    }
                    Message::Registered { node }
                }
            }
            Message::PlacementReq => {
                let state = lock_clean(&inner.state);
                if state.cepoch == 0 {
                    // Epoch 0 = "nothing published"; clients map this to
                    // a typed NotPublished.
                    Message::Placement {
                        epoch: 0,
                        rank_epoch: 0,
                        boundaries: Vec::new(),
                        owners: Vec::new(),
                    }
                } else {
                    Message::Placement {
                        epoch: state.cepoch,
                        rank_epoch: state.rank_epoch,
                        boundaries: inner.map.boundaries().iter().map(|&b| b as u64).collect(),
                        owners: state
                            .placement
                            .iter()
                            .map(|id| {
                                state
                                    .nodes
                                    .get(id)
                                    .map_or_else(String::new, |n| n.addr.clone())
                            })
                            .collect(),
                    }
                }
            }
            Message::RoutingReq => {
                let state = lock_clean(&inner.state);
                match &state.pinned {
                    Some(snapshot) => Message::Routing {
                        rank_epoch: state.rank_epoch,
                        site_of: snapshot
                            .site_assignments()
                            .iter()
                            .map(|s| s.index() as u64)
                            .collect(),
                    },
                    None => Message::Routing {
                        rank_epoch: 0,
                        site_of: Vec::new(),
                    },
                }
            }
            other => Message::Bad {
                detail: format!("unexpected message at the controller: {other:?}"),
            },
        };
        if conn.send(&reply).is_err() {
            return;
        }
    }
}

fn monitor_loop(inner: &Arc<ControllerInner>) {
    let mut seq = 0u64;
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(inner.cfg.heartbeat_interval);
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let targets: Vec<(u64, String)> = {
            let state = lock_clean(&inner.state);
            state
                .nodes
                .iter()
                .map(|(&id, e)| (id, e.addr.clone()))
                .collect()
        };
        let mut dead: Vec<u64> = Vec::new();
        for (id, addr) in targets {
            seq += 1;
            let started = Instant::now();
            let alive = inner
                .dial(&addr)
                .ok()
                .and_then(|mut conn| conn.call(&Message::Ping { seq }).ok())
                .is_some_and(|reply| matches!(reply, Message::Pong { seq: s, .. } if s == seq));
            let mut state = lock_clean(&inner.state);
            let Some(entry) = state.nodes.get_mut(&id) else {
                continue;
            };
            if alive {
                entry.missed = 0;
                entry.rtt_us = started.elapsed().as_micros() as u64;
            } else {
                inner.missed_heartbeats.fetch_add(1, Ordering::Relaxed);
                entry.missed += 1;
                if entry.missed > inner.cfg.miss_limit {
                    dead.push(id);
                }
            }
        }
        if dead.is_empty() {
            continue;
        }
        {
            let mut state = lock_clean(&inner.state);
            for id in &dead {
                inner.evict_locked(&mut state, *id);
            }
        }
        if inner.cfg.auto_failover {
            // NotPublished / NoNodes here just mean there is nothing to
            // repair yet; publish-time failures surface on the publisher.
            let _ = inner.failover();
        }
    }
}
