//! Error type of the cluster fabric.
//!
//! The split that matters operationally is *retriable* vs *terminal*:
//! a query hitting a dying node gets [`ClusterError::NodeUnavailable`] —
//! the controller will reassign the node's shards and a retry against
//! refreshed placement succeeds — whereas a tombstoned document is a
//! typed, permanent answer. [`ClusterError::is_retriable`] encodes the
//! distinction so callers (and the churn bench) can loop on exactly the
//! errors failover repairs and fail loudly on everything else.

use std::error::Error as StdError;
use std::fmt;

use lmm_serve::ServeError;

use crate::wire::WireError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Errors produced by cluster nodes, the controller, and clients.
#[derive(Debug)]
pub enum ClusterError {
    /// A component was configured inconsistently.
    InvalidConfig {
        /// Human-readable cause.
        reason: String,
    },
    /// A frame failed to encode or decode.
    Wire(WireError),
    /// The controller could not be reached (registration, placement or
    /// routing fetch). Not retriable: without a controller there is no
    /// failover to wait for.
    ControllerUnavailable {
        /// What failed, including the io error.
        detail: String,
    },
    /// A shard node could not be reached or dropped the connection
    /// mid-exchange. **Retriable**: the controller's heartbeat monitor
    /// evicts the node, reassigns its shards and bumps the cluster epoch;
    /// a retry against refreshed placement lands on a survivor.
    NodeUnavailable {
        /// Address of the unreachable node.
        addr: String,
        /// What failed, including the io error.
        detail: String,
    },
    /// A scatter-gather kept observing a mix of cluster epochs after
    /// exhausting its retry and escalation budget. **Retriable**: the
    /// cluster was mid-publish (or mid-failover) the whole time; a later
    /// attempt sees the commit completed.
    Inconsistent {
        /// Gather rounds attempted before giving up.
        rounds: usize,
    },
    /// The cluster has no committed epoch yet (nothing published).
    NotPublished,
    /// A publish was requested with no registered (live) nodes.
    NoNodes,
    /// A published snapshot's epoch is older than the pinned one.
    StalePublish {
        /// Epoch of the rejected snapshot.
        published: u64,
        /// Epoch currently pinned by the controller.
        pinned: u64,
    },
    /// A publish failed on every attempt (each attempt evicts the failed
    /// node and retries against survivors until none remain).
    PublishFailed {
        /// Human-readable cause of the last attempt.
        detail: String,
    },
    /// An operation exhausted its [`RetryPolicy`](crate::RetryPolicy)
    /// budget — every attempt failed and no further backoff was granted.
    /// Terminal by construction: the budget *is* the caller's patience.
    RetryExhausted {
        /// The operation that gave up.
        op: &'static str,
        /// Attempts made (initial try plus retries).
        attempts: u32,
        /// The last attempt's failure.
        detail: String,
    },
    /// A typed serving-tier answer (unknown/tombstoned document or site)
    /// relayed from the answering node.
    Serve(ServeError),
    /// A peer answered with an unexpected or malformed message.
    Protocol {
        /// What was expected and what arrived.
        detail: String,
    },
}

impl ClusterError {
    /// `true` for errors a caller should retry after the cluster
    /// re-converges (node eviction + shard reassignment, or an in-flight
    /// publish committing). Everything else is a permanent answer.
    #[must_use]
    pub fn is_retriable(&self) -> bool {
        matches!(
            self,
            ClusterError::NodeUnavailable { .. } | ClusterError::Inconsistent { .. }
        )
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidConfig { reason } => {
                write!(f, "invalid cluster configuration: {reason}")
            }
            ClusterError::Wire(e) => write!(f, "wire protocol error: {e}"),
            ClusterError::ControllerUnavailable { detail } => {
                write!(f, "controller unavailable: {detail}")
            }
            ClusterError::NodeUnavailable { addr, detail } => {
                write!(f, "node {addr} unavailable: {detail}")
            }
            ClusterError::Inconsistent { rounds } => {
                write!(
                    f,
                    "gather saw mixed cluster epochs after {rounds} rounds (publish or \
                     failover still in flight)"
                )
            }
            ClusterError::NotPublished => write!(f, "cluster has no committed epoch yet"),
            ClusterError::NoNodes => write!(f, "no live shard nodes registered"),
            ClusterError::StalePublish { published, pinned } => {
                write!(
                    f,
                    "snapshot epoch {published} is older than pinned epoch {pinned}"
                )
            }
            ClusterError::PublishFailed { detail } => write!(f, "publish failed: {detail}"),
            ClusterError::RetryExhausted {
                op,
                attempts,
                detail,
            } => {
                write!(
                    f,
                    "{op} gave up after {attempts} attempts (retry budget spent): {detail}"
                )
            }
            ClusterError::Serve(e) => write!(f, "{e}"),
            ClusterError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl StdError for ClusterError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ClusterError::Wire(e) => Some(e),
            ClusterError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClusterError {
    fn from(e: WireError) -> Self {
        ClusterError::Wire(e)
    }
}

impl From<ServeError> for ClusterError {
    fn from(e: ServeError) -> Self {
        ClusterError::Serve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retriability_splits_failover_from_permanent_answers() {
        let transient = ClusterError::NodeUnavailable {
            addr: "127.0.0.1:9".into(),
            detail: "connection refused".into(),
        };
        assert!(transient.is_retriable());
        assert!(ClusterError::Inconsistent { rounds: 8 }.is_retriable());
        let permanent = ClusterError::Serve(ServeError::TombstonedDoc { doc: 3, epoch: 5 });
        assert!(!permanent.is_retriable());
        assert!(!ClusterError::NotPublished.is_retriable());
        assert!(!ClusterError::ControllerUnavailable {
            detail: "refused".into()
        }
        .is_retriable());
        // A spent retry budget is terminal: retrying a retry-exhaustion
        // would make the budget meaningless.
        assert!(!ClusterError::RetryExhausted {
            op: "publish",
            attempts: 7,
            detail: "node 3 unreachable".into()
        }
        .is_retriable());
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: StdError + Send + Sync + 'static>() {}
        assert_bounds::<ClusterError>();
    }
}
