//! The cluster wire protocol: a hand-rolled, length-prefixed binary codec.
//!
//! Every frame on a cluster connection is
//!
//! ```text
//! [u32 BE payload length][u8 version][u8 tag][body...]
//! ```
//!
//! with all integers big-endian and every `f64` carried as its IEEE-754
//! bit pattern (`to_bits`/`from_bits`) — scores survive the wire
//! **bitwise**, which is what lets the parity bench compare a remote
//! answer against an in-process one with `==` instead of a tolerance.
//!
//! Decoding is total: [`decode_frame`] and [`decode_message`] return a
//! typed [`WireError`] for truncated frames, oversized length prefixes,
//! unknown version bytes, unknown tags, and malformed bodies — they never
//! panic and never allocate proportionally to a length claim that the
//! remaining bytes cannot back (a 4 GB vector header on a 40-byte frame
//! is rejected before any allocation). The property suite in
//! `tests/wire_props.rs` hammers both directions.

use std::fmt;

use lmm_engine::SnapshotSegment;
use lmm_graph::{DocId, SiteId};
use lmm_serve::{DocScore, SiteTopK, SwapGrade};

/// Protocol version carried by every frame. Peers reject frames whose
/// version byte differs — a mixed-version cluster fails typed instead of
/// misparsing.
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on a frame's payload length. Large enough for a full-web
/// snapshot segment, small enough that a corrupt or hostile length prefix
/// cannot drive an allocation.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Decode/encode failures. Every variant is a *refusal*, not a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the announced content did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A length prefix exceeded [`MAX_PAYLOAD`].
    Oversized {
        /// The claimed payload length.
        len: u64,
    },
    /// The version byte is not [`WIRE_VERSION`].
    BadVersion {
        /// The version byte received.
        version: u8,
    },
    /// The message tag is not one this protocol defines.
    BadTag {
        /// The tag byte received.
        tag: u8,
    },
    /// The body contradicted itself (impossible counts, invalid UTF-8,
    /// enum discriminants out of range, non-finite score bits, ...).
    Malformed {
        /// Human-readable cause.
        detail: String,
    },
    /// The body decoded cleanly but bytes were left over.
    TrailingBytes {
        /// Leftover byte count.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            WireError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes exceeds cap {MAX_PAYLOAD}")
            }
            WireError::BadVersion { version } => {
                write!(
                    f,
                    "unknown protocol version {version} (expected {WIRE_VERSION})"
                )
            }
            WireError::BadTag { tag } => write!(f, "unknown message tag {tag}"),
            WireError::Malformed { detail } => write!(f, "malformed message body: {detail}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message body")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Per-node counters shipped over the wire on a stats request — the
/// cluster-tier analogue of `ServeStatsSnapshot`, extended with transport
/// accounting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeWireStats {
    /// The node's controller-assigned id.
    pub node: u64,
    /// The node's committed cluster epoch.
    pub epoch: u64,
    /// The rank (snapshot) epoch the node answers from.
    pub rank_epoch: u64,
    /// `(shard, live docs)` per owned shard, sorted by shard.
    pub shard_docs: Vec<(u64, u64)>,
    /// Queries answered (score batches, top-k, site top-k).
    pub queries: u64,
    /// Point lookups that answered a tombstoned document or site.
    pub tombstone_rejections: u64,
    /// Snapshot segments staged (including restages superseded before
    /// commit).
    pub staged: u64,
    /// Commits applied (epoch flips).
    pub commits: u64,
    /// Staged epoch sets discarded by an explicit controller `Abort`.
    pub aborted: u64,
    /// Staged epoch sets discarded by the node's own TTL expiry (the
    /// controller died or lost this node between stage and commit).
    pub staged_expired: u64,
    /// Bytes written to peers since the node started.
    pub bytes_sent: u64,
    /// Bytes read from peers since the node started.
    pub bytes_recv: u64,
}

impl NodeWireStats {
    /// Live documents across this node's owned shards.
    #[must_use]
    pub fn n_docs(&self) -> u64 {
        self.shard_docs.iter().map(|&(_, d)| d).sum()
    }

    /// Document skew across this node's *own* shards — the same
    /// max-over-mean signal `ServeStatsSnapshot::doc_skew` computes for
    /// the in-process tier, reused here so dashboards read one number.
    #[must_use]
    pub fn doc_skew(&self) -> f64 {
        let snap = lmm_serve::ServeStatsSnapshot {
            shard_docs: self.shard_docs.iter().map(|&(_, d)| d).collect(),
            ..Default::default()
        };
        snap.doc_skew()
    }
}

/// Every message of the cluster protocol. One enum for both directions —
/// the tag byte identifies the variant on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Node → controller: announce a fresh node listening on `addr`.
    Register {
        /// The node's `ip:port` listen address.
        addr: String,
    },
    /// Controller → node: registration accepted, node id assigned.
    Registered {
        /// The assigned node id.
        node: u64,
    },
    /// Node → controller: a restarted node announces itself under the id
    /// it held before it died. The controller re-admits the id, restores
    /// its former shard claim, and catches it up by republishing the
    /// pinned snapshot under a bumped cluster epoch (rank epoch
    /// untouched). Answered with [`Message::Registered`].
    Rejoin {
        /// The node id from the previous incarnation.
        node: u64,
        /// The restarted node's new `ip:port` listen address.
        addr: String,
    },
    /// Controller → node heartbeat probe.
    Ping {
        /// Echo token.
        seq: u64,
    },
    /// Node → controller heartbeat answer.
    Pong {
        /// The probe's echo token.
        seq: u64,
        /// The node's committed cluster epoch.
        epoch: u64,
    },
    /// Client → controller: request the current placement map.
    PlacementReq,
    /// Controller → client: the committed placement.
    Placement {
        /// Committed cluster epoch.
        epoch: u64,
        /// Rank (snapshot) epoch the cluster serves.
        rank_epoch: u64,
        /// Shard-map boundaries (first site of each shard, starting 0).
        boundaries: Vec<u64>,
        /// Owning node address per shard (parallel to shards).
        owners: Vec<String>,
    },
    /// Client → controller: request the document → site routing table.
    RoutingReq,
    /// Controller → client: document → site assignments (append-only ids,
    /// so a cached prefix stays valid as the web grows).
    Routing {
        /// Rank epoch the table was read from.
        rank_epoch: u64,
        /// `site_of[doc]` for every document id.
        site_of: Vec<u64>,
    },
    /// Controller → node, publish phase 1: stage one shard at the next
    /// cluster epoch. `segment` is `None` exactly for [`SwapGrade::Repin`]
    /// — the node reuses its current store.
    Stage {
        /// The cluster epoch being staged (commit flips to it).
        epoch: u64,
        /// The shard being staged.
        shard: u64,
        /// How the node must swap this shard.
        grade: SwapGrade,
        /// The shard's snapshot slice (rebuild/refresh only).
        segment: Option<SnapshotSegment>,
    },
    /// Controller → node, publish phase 2: flip to the staged epoch.
    Commit {
        /// The cluster epoch to commit (must equal the staged epoch).
        epoch: u64,
        /// The rank epoch the staged segments came from.
        rank_epoch: u64,
    },
    /// Controller → node: a publish attempt died between stage and
    /// commit; discard anything staged at or below this epoch and refuse
    /// to ever commit it. Answered with [`Message::Ack`].
    Abort {
        /// The dead cluster epoch.
        epoch: u64,
    },
    /// Node → controller: stage or commit applied (also acknowledges an
    /// abort).
    Ack {
        /// The acknowledged cluster epoch.
        epoch: u64,
    },
    /// Client → node: score a batch of documents on one owned shard.
    ScoreBatch {
        /// The shard to answer from.
        shard: u64,
        /// Document ids to score.
        docs: Vec<u64>,
    },
    /// Client → node: one shard's best `k` documents.
    TopKReq {
        /// The shard to answer from.
        shard: u64,
        /// How many documents.
        k: u64,
    },
    /// Client → node: one site's best `k` documents.
    SiteTopKReq {
        /// The shard owning the site.
        shard: u64,
        /// The site.
        site: u64,
        /// How many documents.
        k: u64,
    },
    /// Node → client: batched score answer.
    Scores {
        /// The node's committed cluster epoch.
        epoch: u64,
        /// The rank epoch the scores came from.
        rank_epoch: u64,
        /// One typed answer per requested document, in request order.
        scores: Vec<DocScore>,
    },
    /// Node → client: shard top-k answer.
    Top {
        /// The node's committed cluster epoch.
        epoch: u64,
        /// The rank epoch the entries came from.
        rank_epoch: u64,
        /// The shard's best documents in serving order.
        entries: Vec<(DocId, f64)>,
        /// `false` when `k` exceeded the precomputed list and the shard
        /// fell back to a scan.
        complete: bool,
    },
    /// Node → client: site top-k answer.
    SiteTop {
        /// The node's committed cluster epoch.
        epoch: u64,
        /// The rank epoch the reply came from.
        rank_epoch: u64,
        /// The typed site answer.
        reply: SiteTopK,
    },
    /// Controller/client → node: request counters.
    StatsReq,
    /// Node → requester: counters.
    Stats(NodeWireStats),
    /// Node → client: the queried shard is not owned here (placement
    /// changed under the client; refresh and retry).
    NotOwner {
        /// The shard that was asked for.
        shard: u64,
    },
    /// Either direction: the request could not be honoured.
    Bad {
        /// Human-readable cause.
        detail: String,
    },
}

// ---------------------------------------------------------------------------
// primitive writers/readers
// ---------------------------------------------------------------------------

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn boolean(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn len(&mut self, n: usize) -> Result<(), WireError> {
        let n32 = u32::try_from(n).map_err(|_| WireError::Malformed {
            detail: format!("collection of {n} items exceeds u32 length prefix"),
        })?;
        self.u32(n32);
        Ok(())
    }
    fn str(&mut self, s: &str) -> Result<(), WireError> {
        self.len(s.len())?;
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.bytes(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.bytes(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn boolean(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Malformed {
                detail: format!("boolean byte {b}"),
            }),
        }
    }

    /// Reads a collection length prefix and refuses any claim the
    /// remaining bytes cannot possibly back (`min_elem` bytes/element),
    /// so a corrupt header cannot drive an allocation.
    fn claimed_len(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let floor = n.saturating_mul(min_elem.max(1));
        if floor > self.remaining() {
            return Err(WireError::Truncated {
                needed: floor,
                have: self.remaining(),
            });
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.claimed_len(1)?;
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::Malformed {
            detail: "invalid UTF-8 in string field".into(),
        })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// compound field codecs
// ---------------------------------------------------------------------------

fn put_u64s(w: &mut Writer, items: &[u64]) -> Result<(), WireError> {
    w.len(items.len())?;
    for &v in items {
        w.u64(v);
    }
    Ok(())
}

fn take_u64s(r: &mut Reader<'_>) -> Result<Vec<u64>, WireError> {
    let n = r.claimed_len(8)?;
    (0..n).map(|_| r.u64()).collect()
}

fn put_entries(w: &mut Writer, entries: &[(DocId, f64)]) -> Result<(), WireError> {
    w.len(entries.len())?;
    for &(doc, score) in entries {
        w.u64(doc.index() as u64);
        w.f64(score);
    }
    Ok(())
}

fn take_entries(r: &mut Reader<'_>) -> Result<Vec<(DocId, f64)>, WireError> {
    let n = r.claimed_len(16)?;
    (0..n).map(|_| Ok((take_doc(r)?, r.f64()?))).collect()
}

fn take_doc(r: &mut Reader<'_>) -> Result<DocId, WireError> {
    let raw = r.u64()?;
    usize::try_from(raw)
        .map(DocId)
        .map_err(|_| WireError::Malformed {
            detail: format!("document id {raw} does not fit this platform"),
        })
}

fn take_usize(r: &mut Reader<'_>) -> Result<usize, WireError> {
    let raw = r.u64()?;
    usize::try_from(raw).map_err(|_| WireError::Malformed {
        detail: format!("value {raw} does not fit this platform"),
    })
}

fn put_grade(w: &mut Writer, grade: SwapGrade) {
    w.u8(match grade {
        SwapGrade::Rebuild => 0,
        SwapGrade::Refresh => 1,
        SwapGrade::Repin => 2,
    });
}

fn take_grade(r: &mut Reader<'_>) -> Result<SwapGrade, WireError> {
    match r.u8()? {
        0 => Ok(SwapGrade::Rebuild),
        1 => Ok(SwapGrade::Refresh),
        2 => Ok(SwapGrade::Repin),
        b => Err(WireError::Malformed {
            detail: format!("swap grade discriminant {b}"),
        }),
    }
}

fn put_doc_score(w: &mut Writer, score: DocScore) {
    match score {
        DocScore::Live(v) => {
            w.u8(0);
            w.f64(v);
        }
        DocScore::Tombstoned => w.u8(1),
        DocScore::Unknown => w.u8(2),
    }
}

fn take_doc_score(r: &mut Reader<'_>) -> Result<DocScore, WireError> {
    match r.u8()? {
        0 => Ok(DocScore::Live(r.f64()?)),
        1 => Ok(DocScore::Tombstoned),
        2 => Ok(DocScore::Unknown),
        b => Err(WireError::Malformed {
            detail: format!("doc score discriminant {b}"),
        }),
    }
}

fn put_site_top(w: &mut Writer, reply: &SiteTopK) -> Result<(), WireError> {
    match reply {
        SiteTopK::Entries(entries) => {
            w.u8(0);
            put_entries(w, entries)?;
        }
        SiteTopK::Tombstoned => w.u8(1),
        SiteTopK::NotCovered => w.u8(2),
    }
    Ok(())
}

fn take_site_top(r: &mut Reader<'_>) -> Result<SiteTopK, WireError> {
    match r.u8()? {
        0 => Ok(SiteTopK::Entries(take_entries(r)?)),
        1 => Ok(SiteTopK::Tombstoned),
        2 => Ok(SiteTopK::NotCovered),
        b => Err(WireError::Malformed {
            detail: format!("site top-k discriminant {b}"),
        }),
    }
}

fn put_segment(w: &mut Writer, seg: &SnapshotSegment) -> Result<(), WireError> {
    w.u64(seg.epoch);
    w.str(&seg.backend)?;
    w.u64(seg.sites.start as u64);
    w.u64(seg.sites.end as u64);
    w.u64(seg.n_docs as u64);
    w.u64(seg.n_sites as u64);
    w.len(seg.members.len())?;
    for (docs, scores) in seg.members.iter().zip(&seg.member_scores) {
        w.len(docs.len())?;
        for (&doc, &score) in docs.iter().zip(scores) {
            w.u64(doc.index() as u64);
            w.f64(score);
        }
    }
    w.len(seg.tombstoned.len())?;
    for &(doc, site) in &seg.tombstoned {
        w.u64(doc.index() as u64);
        w.u64(site.index() as u64);
    }
    Ok(())
}

fn take_segment(r: &mut Reader<'_>) -> Result<SnapshotSegment, WireError> {
    let epoch = r.u64()?;
    let backend = r.str()?;
    let start = take_usize(r)?;
    let end = take_usize(r)?;
    if end < start {
        return Err(WireError::Malformed {
            detail: format!("segment site range {start}..{end} is inverted"),
        });
    }
    let n_docs = take_usize(r)?;
    let n_sites = take_usize(r)?;
    let covered = r.claimed_len(4)?;
    if covered != end - start {
        return Err(WireError::Malformed {
            detail: format!(
                "segment covers {covered} sites but its range {start}..{end} holds {}",
                end - start
            ),
        });
    }
    let mut members = Vec::with_capacity(covered);
    let mut member_scores = Vec::with_capacity(covered);
    for _ in 0..covered {
        let n = r.claimed_len(16)?;
        let mut docs = Vec::with_capacity(n);
        let mut scores = Vec::with_capacity(n);
        for _ in 0..n {
            let doc = take_doc(r)?;
            if doc.index() >= n_docs {
                return Err(WireError::Malformed {
                    detail: format!("member doc {} outside id space {n_docs}", doc.index()),
                });
            }
            docs.push(doc);
            scores.push(r.f64()?);
        }
        members.push(docs);
        member_scores.push(scores);
    }
    let n_tomb = r.claimed_len(16)?;
    let mut tombstoned = Vec::with_capacity(n_tomb);
    for _ in 0..n_tomb {
        let doc = take_doc(r)?;
        if doc.index() >= n_docs {
            return Err(WireError::Malformed {
                detail: format!("tombstoned doc {} outside id space {n_docs}", doc.index()),
            });
        }
        tombstoned.push((doc, SiteId(take_usize(r)?)));
    }
    Ok(SnapshotSegment {
        epoch,
        backend,
        sites: start..end,
        n_docs,
        n_sites,
        members,
        member_scores,
        tombstoned,
    })
}

// ---------------------------------------------------------------------------
// message codec
// ---------------------------------------------------------------------------

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::Register { .. } => 1,
            Message::Registered { .. } => 2,
            Message::Ping { .. } => 3,
            Message::Pong { .. } => 4,
            Message::PlacementReq => 5,
            Message::Placement { .. } => 6,
            Message::RoutingReq => 7,
            Message::Routing { .. } => 8,
            Message::Stage { .. } => 9,
            Message::Commit { .. } => 10,
            Message::Ack { .. } => 11,
            Message::ScoreBatch { .. } => 12,
            Message::TopKReq { .. } => 13,
            Message::SiteTopKReq { .. } => 14,
            Message::Scores { .. } => 15,
            Message::Top { .. } => 16,
            Message::SiteTop { .. } => 17,
            Message::StatsReq => 18,
            Message::Stats(_) => 19,
            Message::NotOwner { .. } => 20,
            Message::Bad { .. } => 21,
            Message::Abort { .. } => 22,
            Message::Rejoin { .. } => 23,
        }
    }
}

/// Encodes a message payload (`[version][tag][body]`, no length prefix —
/// the transport frames it).
///
/// # Errors
/// [`WireError::Malformed`] when a collection exceeds the u32 length
/// prefix (practically unreachable below [`MAX_PAYLOAD`]).
pub fn encode_message(msg: &Message) -> Result<Vec<u8>, WireError> {
    let mut w = Writer(Vec::with_capacity(64));
    w.u8(WIRE_VERSION);
    w.u8(msg.tag());
    match msg {
        Message::Register { addr } => w.str(addr)?,
        Message::Registered { node } => w.u64(*node),
        Message::Ping { seq } => w.u64(*seq),
        Message::Pong { seq, epoch } => {
            w.u64(*seq);
            w.u64(*epoch);
        }
        Message::PlacementReq | Message::RoutingReq | Message::StatsReq => {}
        Message::Placement {
            epoch,
            rank_epoch,
            boundaries,
            owners,
        } => {
            w.u64(*epoch);
            w.u64(*rank_epoch);
            put_u64s(&mut w, boundaries)?;
            w.len(owners.len())?;
            for owner in owners {
                w.str(owner)?;
            }
        }
        Message::Routing {
            rank_epoch,
            site_of,
        } => {
            w.u64(*rank_epoch);
            put_u64s(&mut w, site_of)?;
        }
        Message::Stage {
            epoch,
            shard,
            grade,
            segment,
        } => {
            w.u64(*epoch);
            w.u64(*shard);
            put_grade(&mut w, *grade);
            match segment {
                Some(seg) => {
                    w.u8(1);
                    put_segment(&mut w, seg)?;
                }
                None => w.u8(0),
            }
        }
        Message::Commit { epoch, rank_epoch } => {
            w.u64(*epoch);
            w.u64(*rank_epoch);
        }
        Message::Ack { epoch } => w.u64(*epoch),
        Message::ScoreBatch { shard, docs } => {
            w.u64(*shard);
            put_u64s(&mut w, docs)?;
        }
        Message::TopKReq { shard, k } => {
            w.u64(*shard);
            w.u64(*k);
        }
        Message::SiteTopKReq { shard, site, k } => {
            w.u64(*shard);
            w.u64(*site);
            w.u64(*k);
        }
        Message::Scores {
            epoch,
            rank_epoch,
            scores,
        } => {
            w.u64(*epoch);
            w.u64(*rank_epoch);
            w.len(scores.len())?;
            for &s in scores {
                put_doc_score(&mut w, s);
            }
        }
        Message::Top {
            epoch,
            rank_epoch,
            entries,
            complete,
        } => {
            w.u64(*epoch);
            w.u64(*rank_epoch);
            put_entries(&mut w, entries)?;
            w.boolean(*complete);
        }
        Message::SiteTop {
            epoch,
            rank_epoch,
            reply,
        } => {
            w.u64(*epoch);
            w.u64(*rank_epoch);
            put_site_top(&mut w, reply)?;
        }
        Message::Stats(stats) => {
            w.u64(stats.node);
            w.u64(stats.epoch);
            w.u64(stats.rank_epoch);
            w.len(stats.shard_docs.len())?;
            for &(shard, docs) in &stats.shard_docs {
                w.u64(shard);
                w.u64(docs);
            }
            w.u64(stats.queries);
            w.u64(stats.tombstone_rejections);
            w.u64(stats.staged);
            w.u64(stats.commits);
            w.u64(stats.aborted);
            w.u64(stats.staged_expired);
            w.u64(stats.bytes_sent);
            w.u64(stats.bytes_recv);
        }
        Message::NotOwner { shard } => w.u64(*shard),
        Message::Bad { detail } => w.str(detail)?,
        Message::Abort { epoch } => w.u64(*epoch),
        Message::Rejoin { node, addr } => {
            w.u64(*node);
            w.str(addr)?;
        }
    }
    if w.0.len() > MAX_PAYLOAD as usize {
        return Err(WireError::Oversized {
            len: w.0.len() as u64,
        });
    }
    Ok(w.0)
}

/// Decodes one message payload (`[version][tag][body]`). Total: every
/// failure is a typed [`WireError`], and the whole payload must be
/// consumed.
///
/// # Errors
/// See [`WireError`].
pub fn decode_message(payload: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { version });
    }
    let tag = r.u8()?;
    let msg = match tag {
        1 => Message::Register { addr: r.str()? },
        2 => Message::Registered { node: r.u64()? },
        3 => Message::Ping { seq: r.u64()? },
        4 => Message::Pong {
            seq: r.u64()?,
            epoch: r.u64()?,
        },
        5 => Message::PlacementReq,
        6 => {
            let epoch = r.u64()?;
            let rank_epoch = r.u64()?;
            let boundaries = take_u64s(&mut r)?;
            let n = r.claimed_len(4)?;
            let owners = (0..n).map(|_| r.str()).collect::<Result<_, _>>()?;
            Message::Placement {
                epoch,
                rank_epoch,
                boundaries,
                owners,
            }
        }
        7 => Message::RoutingReq,
        8 => Message::Routing {
            rank_epoch: r.u64()?,
            site_of: take_u64s(&mut r)?,
        },
        9 => {
            let epoch = r.u64()?;
            let shard = r.u64()?;
            let grade = take_grade(&mut r)?;
            let segment = match r.u8()? {
                0 => None,
                1 => Some(take_segment(&mut r)?),
                b => {
                    return Err(WireError::Malformed {
                        detail: format!("segment option byte {b}"),
                    })
                }
            };
            Message::Stage {
                epoch,
                shard,
                grade,
                segment,
            }
        }
        10 => Message::Commit {
            epoch: r.u64()?,
            rank_epoch: r.u64()?,
        },
        11 => Message::Ack { epoch: r.u64()? },
        12 => Message::ScoreBatch {
            shard: r.u64()?,
            docs: take_u64s(&mut r)?,
        },
        13 => Message::TopKReq {
            shard: r.u64()?,
            k: r.u64()?,
        },
        14 => Message::SiteTopKReq {
            shard: r.u64()?,
            site: r.u64()?,
            k: r.u64()?,
        },
        15 => {
            let epoch = r.u64()?;
            let rank_epoch = r.u64()?;
            let n = r.claimed_len(1)?;
            let scores = (0..n)
                .map(|_| take_doc_score(&mut r))
                .collect::<Result<_, _>>()?;
            Message::Scores {
                epoch,
                rank_epoch,
                scores,
            }
        }
        16 => Message::Top {
            epoch: r.u64()?,
            rank_epoch: r.u64()?,
            entries: take_entries(&mut r)?,
            complete: r.boolean()?,
        },
        17 => Message::SiteTop {
            epoch: r.u64()?,
            rank_epoch: r.u64()?,
            reply: take_site_top(&mut r)?,
        },
        18 => Message::StatsReq,
        19 => {
            let node = r.u64()?;
            let epoch = r.u64()?;
            let rank_epoch = r.u64()?;
            let n = r.claimed_len(16)?;
            let shard_docs = (0..n)
                .map(|_| Ok((r.u64()?, r.u64()?)))
                .collect::<Result<_, WireError>>()?;
            Message::Stats(NodeWireStats {
                node,
                epoch,
                rank_epoch,
                shard_docs,
                queries: r.u64()?,
                tombstone_rejections: r.u64()?,
                staged: r.u64()?,
                commits: r.u64()?,
                aborted: r.u64()?,
                staged_expired: r.u64()?,
                bytes_sent: r.u64()?,
                bytes_recv: r.u64()?,
            })
        }
        20 => Message::NotOwner { shard: r.u64()? },
        21 => Message::Bad { detail: r.str()? },
        22 => Message::Abort { epoch: r.u64()? },
        23 => Message::Rejoin {
            node: r.u64()?,
            addr: r.str()?,
        },
        tag => return Err(WireError::BadTag { tag }),
    };
    r.finish()?;
    Ok(msg)
}

/// Encodes a full frame: `[u32 BE payload length][payload]`.
///
/// # Errors
/// [`WireError::Oversized`] when the payload exceeds [`MAX_PAYLOAD`].
pub fn encode_frame(msg: &Message) -> Result<Vec<u8>, WireError> {
    let payload = encode_message(msg)?;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Decodes one frame off the front of `bytes`, returning the message and
/// the bytes consumed. Never panics on arbitrary input.
///
/// # Errors
/// See [`WireError`].
pub fn decode_frame(bytes: &[u8]) -> Result<(Message, usize), WireError> {
    if bytes.len() < 4 {
        return Err(WireError::Truncated {
            needed: 4,
            have: bytes.len(),
        });
    }
    let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            len: u64::from(len),
        });
    }
    let len = len as usize;
    if bytes.len() - 4 < len {
        return Err(WireError::Truncated {
            needed: 4 + len,
            have: bytes.len(),
        });
    }
    let msg = decode_message(&bytes[4..4 + len])?;
    Ok((msg, 4 + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Message) {
        let frame = encode_frame(msg).expect("encode");
        let (back, consumed) = decode_frame(&frame).expect("decode");
        assert_eq!(&back, msg);
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn frames_round_trip() {
        round_trip(&Message::Register {
            addr: "127.0.0.1:4077".into(),
        });
        round_trip(&Message::Placement {
            epoch: 3,
            rank_epoch: 7,
            boundaries: vec![0, 4, 9],
            owners: vec!["a:1".into(), "a:1".into(), "b:2".into()],
        });
        round_trip(&Message::Scores {
            epoch: 2,
            rank_epoch: 2,
            scores: vec![
                DocScore::Live(0.125),
                DocScore::Tombstoned,
                DocScore::Unknown,
            ],
        });
        round_trip(&Message::SiteTop {
            epoch: 1,
            rank_epoch: 1,
            reply: SiteTopK::Entries(vec![(DocId(4), 0.5), (DocId(1), 0.25)]),
        });
        round_trip(&Message::Abort { epoch: 12 });
        round_trip(&Message::Rejoin {
            node: 3,
            addr: "127.0.0.1:4078".into(),
        });
    }

    #[test]
    fn segment_stages_round_trip_bitwise() {
        let seg = SnapshotSegment {
            epoch: 9,
            backend: "layered".into(),
            sites: 2..4,
            n_docs: 10,
            n_sites: 5,
            members: vec![vec![DocId(3), DocId(4)], vec![DocId(7)]],
            member_scores: vec![vec![0.1 + 0.2, f64::MIN_POSITIVE], vec![1.0 / 3.0]],
            tombstoned: vec![(DocId(5), SiteId(2))],
        };
        let msg = Message::Stage {
            epoch: 4,
            shard: 1,
            grade: SwapGrade::Rebuild,
            segment: Some(seg.clone()),
        };
        let frame = encode_frame(&msg).expect("encode");
        let (back, _) = decode_frame(&frame).expect("decode");
        let Message::Stage {
            segment: Some(got), ..
        } = back
        else {
            panic!("wrong variant");
        };
        // Bitwise, not approximate: scores survive via to_bits.
        for (a, b) in got
            .member_scores
            .iter()
            .flatten()
            .zip(seg.member_scores.iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(got, seg);
    }

    #[test]
    fn hostile_headers_are_refused_without_allocating() {
        // Claims 4 billion entries on a 12-byte body.
        let mut w = Writer(Vec::new());
        w.u8(WIRE_VERSION);
        w.u8(12); // ScoreBatch
        w.u64(0); // shard
        w.u32(u32::MAX); // docs length claim
        let mut frame = Vec::new();
        frame.extend_from_slice(&(w.0.len() as u32).to_be_bytes());
        frame.extend_from_slice(&w.0);
        assert!(matches!(
            decode_frame(&frame),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn version_and_tag_are_checked() {
        let frame = encode_frame(&Message::Ping { seq: 1 }).expect("encode");
        let mut wrong_version = frame.clone();
        wrong_version[4] = 99;
        assert_eq!(
            decode_frame(&wrong_version),
            Err(WireError::BadVersion { version: 99 })
        );
        let mut wrong_tag = frame;
        wrong_tag[5] = 200;
        assert_eq!(
            decode_frame(&wrong_tag),
            Err(WireError::BadTag { tag: 200 })
        );
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        let mut frame = vec![0u8; 8];
        frame[..4].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        assert_eq!(
            decode_frame(&frame),
            Err(WireError::Oversized {
                len: u64::from(MAX_PAYLOAD) + 1
            })
        );
    }

    #[test]
    fn node_stats_reuse_the_serve_skew_formula() {
        let stats = NodeWireStats {
            shard_docs: vec![(0, 40), (1, 100), (2, 100), (3, 160)],
            ..Default::default()
        };
        assert!((stats.doc_skew() - 1.6).abs() < 1e-12);
        assert_eq!(stats.n_docs(), 400);
    }
}
