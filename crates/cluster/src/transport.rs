//! Framed TCP transport: one [`FramedConn`] per socket, bounded timeouts
//! on every read and write, byte counters, and a deterministic
//! fault-injection shim.
//!
//! The fabric is std-only: plain `TcpStream`s on loopback (or any
//! network), thread-per-connection on the accepting side. Every
//! connection gets explicit read/write timeouts, so a dead peer costs a
//! bounded wait — never a hang — and the caller maps the typed
//! [`TransportError`] to a retriable `NodeUnavailable`.
//!
//! Fault injection ([`FaultPlan`]) is symmetric: a *sent* frame can be
//! silently dropped (the peer's read times out), delayed, or the socket
//! torn down mid-conversation; a *received* frame can be swallowed after
//! full receipt or delayed before delivery; and periodic **partition
//! windows** black out both directions at once, so the endpoint looks
//! alive at the TCP layer but exchanges nothing. Every schedule is a pure
//! function of the plan's seed and the connection's index, so a failing
//! run replays exactly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::wire::{decode_message, encode_frame, Message, WireError, MAX_PAYLOAD};

/// Transport-level failures, distinct from protocol-level [`WireError`]s
/// (which are also surfaced here once bytes arrive but do not parse).
#[derive(Debug)]
pub enum TransportError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// The peer closed the connection (EOF mid-protocol).
    Closed,
    /// No full frame arrived within the read timeout.
    TimedOut,
    /// Bytes arrived but did not parse.
    Wire(WireError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Closed => write!(f, "peer closed the connection"),
            TransportError::TimedOut => write!(f, "timed out waiting for a frame"),
            TransportError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

/// Bytes moved through a set of connections (an endpoint shares one
/// counter pair across all its sockets).
#[derive(Debug, Default)]
pub struct WireCounters {
    /// Bytes written.
    pub sent: AtomicU64,
    /// Bytes read.
    pub recv: AtomicU64,
}

impl WireCounters {
    /// Reads both counters.
    #[must_use]
    pub fn totals(&self) -> (u64, u64) {
        (
            self.sent.load(Ordering::Relaxed),
            self.recv.load(Ordering::Relaxed),
        )
    }
}

/// Declarative fault schedule, deterministic from `seed`. Rates are per
/// mille per frame; send-side faults are rolled independently per frame
/// in the order disconnect → drop → delay, receive-side faults (drop →
/// delay) from a second independent stream, and partition windows black
/// out both directions on a shared frame counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the xorshift streams all rolls derive from.
    pub seed: u64,
    /// Sent frames silently dropped, per mille.
    pub drop_per_mille: u32,
    /// Sent frames delayed by [`FaultPlan::delay`], per mille.
    pub delay_per_mille: u32,
    /// Delay applied to delayed frames (both directions).
    pub delay: Duration,
    /// Sends that tear the connection down instead, per mille.
    pub disconnect_per_mille: u32,
    /// Received frames swallowed *after* full receipt, per mille — the
    /// bytes crossed the socket (and are counted) but the caller never
    /// sees the message, so the requester's read times out.
    pub recv_drop_per_mille: u32,
    /// Received frames delayed by [`FaultPlan::delay`] before delivery,
    /// per mille.
    pub recv_delay_per_mille: u32,
    /// Bidirectional partition cadence: out of every `partition_period`
    /// frames crossing the connection (sends and receives share one
    /// counter), [`FaultPlan::partition_len`] consecutive frames are
    /// blacked out. Each connection's cadence starts at a deterministic
    /// per-connection phase — a fresh dial is not automatically born
    /// inside the blackout, which would turn a periodic partition into a
    /// permanent one for fresh-dial-per-call flows like heartbeats.
    /// `0` disables partitions.
    pub partition_period: u64,
    /// Frames blacked out per partition window.
    pub partition_len: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a config default).
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            drop_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::ZERO,
            disconnect_per_mille: 0,
            recv_drop_per_mille: 0,
            recv_delay_per_mille: 0,
            partition_period: 0,
            partition_len: 0,
        }
    }

    /// Builds the injector for the `index`-th connection of this plan.
    /// Each connection gets its own deterministic roll streams (one per
    /// direction), so the fault sequence does not depend on
    /// cross-connection interleaving.
    #[must_use]
    pub fn injector(&self, index: u64) -> FaultInjector {
        let lane = self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Phase-shift the partition cadence per connection: the window
        // still reopens every `partition_period` frames, but where in the
        // cycle this connection starts is a deterministic roll.
        let phase = if self.partition_period == 0 {
            0
        } else {
            splitmix(lane ^ 0x0FF5_0FF5_0FF5_0FF5) % self.partition_period
        };
        FaultInjector {
            plan: *self,
            state: Mutex::new(splitmix(lane)),
            recv_state: Mutex::new(splitmix(lane ^ 0xD1E5_E10F_ACE5_0FF5)),
            frames: AtomicU64::new(phase),
        }
    }
}

/// One fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Drop,
    Delay(Duration),
    Disconnect,
}

/// Per-connection deterministic fault roller.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<u64>,
    recv_state: Mutex<u64>,
    frames: AtomicU64,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

impl FaultInjector {
    fn draw(state: &Mutex<u64>) -> u32 {
        let mut state = state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % 1000) as u32
    }

    /// Send-side roll: disconnect → drop → delay.
    fn roll(&self) -> Fault {
        let draw = Self::draw(&self.state);
        let p = &self.plan;
        if draw < p.disconnect_per_mille {
            Fault::Disconnect
        } else if draw < p.disconnect_per_mille + p.drop_per_mille {
            Fault::Drop
        } else if draw < p.disconnect_per_mille + p.drop_per_mille + p.delay_per_mille {
            Fault::Delay(p.delay)
        } else {
            Fault::None
        }
    }

    /// Receive-side roll: drop → delay (a receiver cannot "disconnect" a
    /// frame it already has; teardown is a send-side fault).
    fn recv_roll(&self) -> Fault {
        let draw = Self::draw(&self.recv_state);
        let p = &self.plan;
        if draw < p.recv_drop_per_mille {
            Fault::Drop
        } else if draw < p.recv_drop_per_mille + p.recv_delay_per_mille {
            Fault::Delay(p.delay)
        } else {
            Fault::None
        }
    }

    /// Advances the shared frame counter and reports whether this frame
    /// falls inside a partition blackout window.
    fn partitioned(&self) -> bool {
        let p = &self.plan;
        if p.partition_period == 0 || p.partition_len == 0 {
            return false;
        }
        let frame = self.frames.fetch_add(1, Ordering::Relaxed);
        frame % p.partition_period < p.partition_len
    }
}

/// A framed, fault-injectable message stream over one `TcpStream`.
#[derive(Debug)]
pub struct FramedConn {
    stream: TcpStream,
    peer: String,
    counters: Arc<WireCounters>,
    faults: Option<Arc<FaultInjector>>,
}

impl FramedConn {
    /// Dials `addr` with `timeout` as the connect, read, and write bound.
    ///
    /// # Errors
    /// Any socket error (unresolvable address, refused, timed out).
    pub fn connect(
        addr: &str,
        timeout: Duration,
        counters: Arc<WireCounters>,
    ) -> Result<Self, TransportError> {
        let sockaddr: SocketAddr = addr
            .to_socket_addrs()
            .map_err(TransportError::Io)?
            .next()
            .ok_or_else(|| {
                TransportError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("address {addr} resolved to nothing"),
                ))
            })?;
        // Classified, not raw `Io`: a connect that times out must look
        // exactly like a read that timed out (`TimedOut`) so retry
        // classification upstream is platform-independent.
        let stream = TcpStream::connect_timeout(&sockaddr, timeout).map_err(|e| classify(&e))?;
        Self::from_stream(stream, timeout, counters)
    }

    /// Wraps an accepted (or freshly dialed) stream, installing bounded
    /// read/write timeouts.
    ///
    /// # Errors
    /// Socket-option failures.
    pub fn from_stream(
        stream: TcpStream,
        timeout: Duration,
        counters: Arc<WireCounters>,
    ) -> Result<Self, TransportError> {
        stream.set_nodelay(true).map_err(TransportError::Io)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(TransportError::Io)?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(TransportError::Io)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        Ok(Self {
            stream,
            peer,
            counters,
            faults: None,
        })
    }

    /// Installs a fault injector on this connection's sends.
    #[must_use]
    pub fn with_faults(mut self, injector: Arc<FaultInjector>) -> Self {
        self.faults = Some(injector);
        self
    }

    /// The peer's address, for error messages.
    #[must_use]
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Sends one message, rolling the fault plan first: a partitioned or
    /// dropped frame returns `Ok` without writing (the peer sees
    /// silence), a delayed frame sleeps, a disconnect tears the socket
    /// down and errors.
    ///
    /// # Errors
    /// Socket errors, encode failures, injected disconnects.
    pub fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        if let Some(faults) = &self.faults {
            if faults.partitioned() {
                return Ok(());
            }
            match faults.roll() {
                Fault::None => {}
                Fault::Drop => return Ok(()),
                Fault::Delay(d) => std::thread::sleep(d),
                Fault::Disconnect => {
                    let _ = self.stream.shutdown(std::net::Shutdown::Both);
                    return Err(TransportError::Closed);
                }
            }
        }
        let frame = encode_frame(msg)?;
        self.stream.write_all(&frame).map_err(|e| classify(&e))?;
        self.counters
            .sent
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Receives one message, waiting at most one read-timeout for it to
    /// start arriving.
    ///
    /// # Errors
    /// [`TransportError::TimedOut`] when nothing arrives in time,
    /// [`TransportError::Closed`] on EOF, wire errors on garbage.
    pub fn recv(&mut self) -> Result<Message, TransportError> {
        self.recv_idle(&mut || false)
    }

    /// Receives one message; on an idle read timeout (no byte of the next
    /// frame arrived yet) consults `keep_waiting` — `true` keeps
    /// listening, `false` gives up with [`TransportError::TimedOut`].
    /// Accept loops pass their shutdown flag here so an idle connection
    /// thread can wind down promptly without dropping mid-frame.
    ///
    /// Receive-side faults are rolled *after* a frame fully arrives: a
    /// partitioned or dropped frame is swallowed (bytes counted, message
    /// discarded) and the read continues waiting for the next one — to
    /// the requester this is indistinguishable from send-side loss.
    ///
    /// # Errors
    /// See [`FramedConn::recv`].
    pub fn recv_idle(
        &mut self,
        keep_waiting: &mut dyn FnMut() -> bool,
    ) -> Result<Message, TransportError> {
        loop {
            let msg = self.recv_frame(keep_waiting)?;
            if let Some(faults) = &self.faults {
                if faults.partitioned() {
                    continue;
                }
                match faults.recv_roll() {
                    Fault::None => {}
                    Fault::Drop => continue,
                    Fault::Delay(d) => std::thread::sleep(d),
                    // recv_roll never yields Disconnect.
                    Fault::Disconnect => {}
                }
            }
            return Ok(msg);
        }
    }

    /// Reads exactly one frame off the socket (no fault rolls).
    fn recv_frame(
        &mut self,
        keep_waiting: &mut dyn FnMut() -> bool,
    ) -> Result<Message, TransportError> {
        let mut header = [0u8; 4];
        self.read_exact_idle(&mut header, keep_waiting)?;
        let len = u32::from_be_bytes(header);
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized {
                len: u64::from(len),
            }
            .into());
        }
        // The frame has started: finish it regardless of keep_waiting.
        let mut payload = vec![0u8; len as usize];
        self.read_exact_idle(&mut payload, &mut || true)?;
        self.counters
            .recv
            .fetch_add(4 + u64::from(len), Ordering::Relaxed);
        Ok(decode_message(&payload)?)
    }

    /// `read_exact` that survives read-timeout wakeups: progress made so
    /// far is kept, and `keep_waiting` decides whether an *idle* timeout
    /// (zero bytes of `buf` filled) aborts. A timeout mid-buffer always
    /// keeps waiting — the bytes are in flight.
    fn read_exact_idle(
        &mut self,
        buf: &mut [u8],
        keep_waiting: &mut dyn FnMut() -> bool,
    ) -> Result<(), TransportError> {
        let mut filled = 0usize;
        while filled < buf.len() {
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => filled += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if filled == 0 && !keep_waiting() {
                        return Err(TransportError::TimedOut);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(classify(&e)),
            }
        }
        Ok(())
    }

    /// One round trip: send `msg`, wait for the answer.
    ///
    /// # Errors
    /// See [`FramedConn::send`] and [`FramedConn::recv`].
    pub fn call(&mut self, msg: &Message) -> Result<Message, TransportError> {
        self.send(msg)?;
        self.recv()
    }
}

fn classify(e: &std::io::Error) -> TransportError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => TransportError::TimedOut,
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted
        | std::io::ErrorKind::BrokenPipe => TransportError::Closed,
        _ => TransportError::Io(std::io::Error::new(e.kind(), e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (FramedConn, FramedConn) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let timeout = Duration::from_millis(500);
        let client = FramedConn::connect(&addr, timeout, Arc::new(WireCounters::default()))
            .expect("connect");
        let (accepted, _) = listener.accept().expect("accept");
        let server = FramedConn::from_stream(accepted, timeout, Arc::new(WireCounters::default()))
            .expect("wrap");
        (client, server)
    }

    #[test]
    fn frames_cross_a_real_socket_and_are_counted() {
        let (mut client, mut server) = pair();
        client.send(&Message::Ping { seq: 42 }).expect("send");
        let got = server.recv().expect("recv");
        assert_eq!(got, Message::Ping { seq: 42 });
        server
            .send(&Message::Pong { seq: 42, epoch: 7 })
            .expect("send");
        assert_eq!(
            client.recv().expect("recv"),
            Message::Pong { seq: 42, epoch: 7 }
        );
        let (sent, recv) = client.counters.totals();
        assert!(sent > 0 && recv > 0);
        // Both directions framed identically: what one side sent, the
        // other counted received.
        assert_eq!(server.counters.totals().1, sent);
        assert_eq!(server.counters.totals().0, recv);
    }

    #[test]
    fn idle_timeout_is_bounded_and_typed() {
        let (mut client, _server) = pair();
        let started = std::time::Instant::now();
        let err = client.recv().expect_err("nothing was sent");
        assert!(matches!(err, TransportError::TimedOut));
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn dropped_frames_leave_the_peer_waiting() {
        let (client, mut server) = pair();
        let plan = FaultPlan {
            drop_per_mille: 1000,
            ..FaultPlan::quiet(7)
        };
        let mut client = client.with_faults(Arc::new(plan.injector(0)));
        client
            .send(&Message::Ping { seq: 1 })
            .expect("drop is silent");
        assert!(matches!(
            server.recv().expect_err("frame was dropped"),
            TransportError::TimedOut
        ));
        assert_eq!(client.counters.totals().0, 0);
    }

    #[test]
    fn injected_disconnects_are_loud_on_both_sides() {
        let (client, mut server) = pair();
        let plan = FaultPlan {
            disconnect_per_mille: 1000,
            ..FaultPlan::quiet(7)
        };
        let mut client = client.with_faults(Arc::new(plan.injector(3)));
        assert!(matches!(
            client
                .send(&Message::Ping { seq: 1 })
                .expect_err("torn down"),
            TransportError::Closed
        ));
        assert!(matches!(
            server.recv().expect_err("peer vanished"),
            TransportError::Closed | TransportError::Io(_)
        ));
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed_and_connection() {
        let plan = FaultPlan {
            drop_per_mille: 200,
            delay_per_mille: 100,
            delay: Duration::from_millis(1),
            disconnect_per_mille: 50,
            recv_drop_per_mille: 150,
            ..FaultPlan::quiet(99)
        };
        let a: Vec<_> = {
            let inj = plan.injector(5);
            (0..64).map(|_| (inj.roll(), inj.recv_roll())).collect()
        };
        let b: Vec<_> = {
            let inj = plan.injector(5);
            (0..64).map(|_| (inj.roll(), inj.recv_roll())).collect()
        };
        assert_eq!(a, b);
        let other: Vec<_> = {
            let inj = plan.injector(6);
            (0..64).map(|_| (inj.roll(), inj.recv_roll())).collect()
        };
        assert_ne!(a, other);
        assert!(a.iter().any(|(f, _)| *f != Fault::None));
        // The two directions draw from independent streams.
        assert!(a
            .iter()
            .any(|(f, r)| (*f == Fault::None) != (*r == Fault::None)));
    }

    #[test]
    fn recv_side_drops_swallow_frames_after_receipt() {
        let (mut client, server) = pair();
        let plan = FaultPlan {
            recv_drop_per_mille: 1000,
            ..FaultPlan::quiet(11)
        };
        let mut server = server.with_faults(Arc::new(plan.injector(0)));
        client.send(&Message::Ping { seq: 9 }).expect("send");
        // The bytes cross the socket, but the receiver swallows the frame
        // and keeps waiting until its idle timeout fires.
        assert!(matches!(
            server.recv().expect_err("every frame is swallowed"),
            TransportError::TimedOut
        ));
        assert!(
            server.counters.totals().1 > 0,
            "swallowed bytes still count"
        );
    }

    #[test]
    fn partition_windows_black_out_both_directions() {
        let (client, mut server) = pair();
        // Every frame falls inside the blackout window.
        let plan = FaultPlan {
            partition_period: 4,
            partition_len: 4,
            ..FaultPlan::quiet(3)
        };
        let mut client = client.with_faults(Arc::new(plan.injector(0)));
        client.send(&Message::Ping { seq: 1 }).expect("silent");
        assert_eq!(
            client.counters.totals().0,
            0,
            "partitioned send writes nothing"
        );
        assert!(matches!(
            server.recv().expect_err("nothing crossed"),
            TransportError::TimedOut
        ));
        // And the same window swallows inbound frames too.
        server
            .send(&Message::Pong { seq: 1, epoch: 0 })
            .expect("send");
        assert!(matches!(
            client.recv().expect_err("inbound blacked out"),
            TransportError::TimedOut
        ));
    }

    #[test]
    fn partition_windows_reopen_on_schedule() {
        let plan = FaultPlan {
            partition_period: 4,
            partition_len: 2,
            ..FaultPlan::quiet(3)
        };
        // The cadence starts at a per-connection phase, so assert the
        // shape, not the offset: exactly `len` of every `period`
        // consecutive frames are blacked out, the pattern repeats with
        // the period, and the blackout frames are contiguous (cyclically).
        for index in 0..16 {
            let inj = plan.injector(index);
            let pattern: Vec<bool> = (0..16).map(|_| inj.partitioned()).collect();
            for window in pattern.windows(4) {
                assert_eq!(window.iter().filter(|&&b| b).count(), 2, "{pattern:?}");
            }
            for (a, b) in pattern.iter().zip(pattern.iter().skip(4)) {
                assert_eq!(a, b, "cadence drifted: {pattern:?}");
            }
        }
        // And across connections the phases differ: not every fresh dial
        // may be born partitioned.
        let clean_start = (0..16).any(|index| !plan.injector(index).partitioned());
        assert!(clean_start, "every connection starts inside the blackout");
    }

    #[test]
    fn timeouts_classify_identically_regardless_of_platform_kind() {
        for kind in [std::io::ErrorKind::WouldBlock, std::io::ErrorKind::TimedOut] {
            assert!(matches!(
                classify(&std::io::Error::new(kind, "t")),
                TransportError::TimedOut
            ));
        }
        assert!(matches!(
            classify(&std::io::Error::new(std::io::ErrorKind::BrokenPipe, "p")),
            TransportError::Closed
        ));
    }

    #[test]
    fn connect_to_a_dead_port_fails_typed_not_raw() {
        // Bind a listener, note its port, drop it: connecting now must
        // fail through `classify`, i.e. never panic and never produce a
        // `TimedOut`-shaped raw `Io`.
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").port()
        };
        let err = FramedConn::connect(
            &format!("127.0.0.1:{port}"),
            Duration::from_millis(200),
            Arc::new(WireCounters::default()),
        )
        .expect_err("nothing listens");
        assert!(matches!(
            err,
            TransportError::Io(_) | TransportError::Closed | TransportError::TimedOut
        ));
    }
}
