//! One retry discipline for every role in the fabric.
//!
//! PR 6 left three ad-hoc retry loops in the tree: the client slept a
//! fixed `escalation_backoff` between gather escalations, the controller
//! re-ran failed publishes immediately until it ran out of nodes, and a
//! node that could not reach the controller at startup simply died. Under
//! chaos (dropped frames, delay spikes, partition windows) all three need
//! the same thing: **budgeted exponential backoff with deterministic
//! jitter and a per-operation deadline**. [`RetryPolicy`] is that
//! discipline; [`RetrySchedule`] is one operation's walk through it.
//!
//! Jitter is deterministic on purpose. The chaos harness
//! (`exp_chaos`) replays a seeded fault schedule and asserts exact
//! invariants; a thread-local RNG in the backoff path would make every
//! run a different interleaving. Instead each schedule hashes
//! `(jitter_seed, salt, attempt)` through splitmix64 and scales the
//! exponential step into `[step/2, step]` — desynchronized enough to
//! break retry convoys, reproducible enough to debug.

use std::thread;
use std::time::{Duration, Instant};

/// The splitmix64 mixer — a full-avalanche hash of a 64-bit word. Public
/// within the crate so fault injection and the chaos harness can derive
/// independent deterministic streams from one seed.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A budgeted, deterministic exponential-backoff policy shared by the
/// client (gather escalation, lazy reconnect), the controller (per-node
/// publish calls and whole-publish attempts), and the node (registration
/// and rejoin). `Copy` so configs embedding it stay plain values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First backoff step; doubles each attempt.
    pub base: Duration,
    /// Ceiling on a single backoff step.
    pub max_backoff: Duration,
    /// Total retries allowed per operation (0 disables retrying).
    pub max_attempts: u32,
    /// Wall-clock budget per operation: once `begin` is older than this,
    /// no further delay is granted even with attempts to spare.
    pub deadline: Duration,
    /// Seed for the deterministic jitter stream. Two schedules with the
    /// same seed and salt sleep identically.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Tuned for loopback fabrics: ~10 ms first step, kilohertz-scale
    /// convergence, and a 30 s ceiling that outlives any single publish
    /// or failover window the tests exercise.
    fn default() -> Self {
        Self {
            base: Duration::from_millis(10),
            max_backoff: Duration::from_millis(250),
            max_attempts: 40,
            deadline: Duration::from_secs(30),
            jitter_seed: 0x5EED_AB1E_C0DE_D00D,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — for callers that want exactly one
    /// attempt but share the code path.
    #[must_use]
    pub fn none() -> Self {
        Self {
            max_attempts: 0,
            ..Self::default()
        }
    }

    /// The jittered backoff for `attempt` (0-based) under `salt`.
    ///
    /// The raw step is `base * 2^attempt` capped at `max_backoff`; the
    /// jittered step is deterministic in `[raw/2, raw]` so concurrent
    /// retriers with distinct salts spread out instead of stampeding.
    #[must_use]
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = attempt.min(20); // past 2^20 the cap has long since won
        let raw = self
            .base
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let roll = splitmix64(self.jitter_seed ^ salt.rotate_left(17) ^ u64::from(attempt));
        let half = raw / 2;
        Duration::from_nanos(half + roll % (raw - half + 1))
    }

    /// Starts one operation's schedule. `salt` individualizes the jitter
    /// stream (use an op counter, node id, or epoch) without affecting
    /// the budget.
    #[must_use]
    pub fn begin(&self, salt: u64) -> RetrySchedule {
        RetrySchedule {
            policy: *self,
            salt,
            attempt: 0,
            started: Instant::now(),
        }
    }
}

/// One operation's walk through a [`RetryPolicy`]: hand out backoff
/// delays until the attempt budget or the wall-clock deadline is spent.
#[derive(Debug)]
pub struct RetrySchedule {
    policy: RetryPolicy,
    salt: u64,
    attempt: u32,
    started: Instant,
}

impl RetrySchedule {
    /// The next backoff delay, or `None` when the budget is exhausted —
    /// either `max_attempts` delays were already granted or sleeping the
    /// next step would cross the per-op deadline.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.policy.max_attempts {
            return None;
        }
        let delay = self.policy.backoff(self.attempt, self.salt);
        if self.started.elapsed() + delay > self.policy.deadline {
            return None;
        }
        self.attempt += 1;
        Some(delay)
    }

    /// Sleeps the next backoff step and reports whether the caller may
    /// retry; `false` means the budget is spent and the last error should
    /// surface.
    pub fn backoff_and_retry(&mut self) -> bool {
        match self.next_delay() {
            Some(delay) => {
                thread::sleep(delay);
                true
            }
            None => false,
        }
    }

    /// Delays granted so far.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(7), splitmix64(7));
        assert_ne!(splitmix64(7), splitmix64(8));
        // Single-bit input flips should flip roughly half the output bits.
        let flips = (splitmix64(7) ^ splitmix64(7 | 1 << 40)).count_ones();
        assert!((16..=48).contains(&flips), "weak avalanche: {flips} bits");
    }

    #[test]
    fn backoff_grows_then_caps_with_bounded_jitter() {
        let policy = RetryPolicy {
            base: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            ..RetryPolicy::default()
        };
        let mut prev_raw = Duration::ZERO;
        for attempt in 0..10 {
            let raw = policy
                .base
                .saturating_mul(1 << attempt.min(20))
                .min(policy.max_backoff);
            let jittered = policy.backoff(attempt, 42);
            assert!(jittered <= raw, "attempt {attempt}: {jittered:?} > {raw:?}");
            assert!(
                jittered >= raw / 2,
                "attempt {attempt}: {jittered:?} < half of {raw:?}"
            );
            assert!(raw >= prev_raw);
            prev_raw = raw;
        }
        assert_eq!(prev_raw, policy.max_backoff);
    }

    #[test]
    fn jitter_is_deterministic_per_salt_and_varies_across_salts() {
        let policy = RetryPolicy::default();
        for attempt in 0..8 {
            assert_eq!(policy.backoff(attempt, 1), policy.backoff(attempt, 1));
        }
        // Not every attempt must differ across salts, but the whole
        // schedule colliding would mean the salt is ignored.
        let a: Vec<_> = (0..8).map(|i| policy.backoff(i, 1)).collect();
        let b: Vec<_> = (0..8).map(|i| policy.backoff(i, 2)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn schedule_honors_attempt_budget() {
        let policy = RetryPolicy {
            base: Duration::from_micros(1),
            max_backoff: Duration::from_micros(2),
            max_attempts: 3,
            deadline: Duration::from_secs(60),
            jitter_seed: 9,
        };
        let mut schedule = policy.begin(5);
        assert!(schedule.next_delay().is_some());
        assert!(schedule.next_delay().is_some());
        assert!(schedule.next_delay().is_some());
        assert_eq!(schedule.next_delay(), None);
        assert_eq!(schedule.attempts(), 3);
    }

    #[test]
    fn schedule_honors_wall_deadline() {
        let policy = RetryPolicy {
            base: Duration::from_secs(10),
            max_backoff: Duration::from_secs(10),
            max_attempts: 100,
            deadline: Duration::from_millis(1),
            jitter_seed: 9,
        };
        // The very first 10 s step would blow the 1 ms deadline.
        let mut schedule = policy.begin(0);
        assert_eq!(schedule.next_delay(), None);
    }

    #[test]
    fn zero_attempts_never_retries() {
        let mut schedule = RetryPolicy::none().begin(0);
        assert!(!schedule.backoff_and_retry());
    }
}
