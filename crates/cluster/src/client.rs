//! The cluster client: the `ShardedServer` query surface over TCP, with
//! the same epoch-consistency contract.
//!
//! Every response is answered from exactly one *cluster* epoch. A
//! scatter-gather that straddles a publish (some nodes already at `C+1`,
//! some still at `C`) retries, then **escalates**: it re-fetches
//! placement from the controller each round and backs off until the
//! commit fan-out lands — the wire analogue of the in-process router
//! waiting on the publish gate. Epoch mixing is *detected and retried*,
//! never merged.
//!
//! Failures are typed by what repairs them: a dead node answers as a
//! retriable [`ClusterError::NodeUnavailable`] (the controller's failover
//! reassigns and a later retry lands on a survivor), while tombstoned or
//! unknown documents surface the same typed `ServeError`s as the
//! in-process tier — bitwise-identical payloads, which the parity bench
//! checks.
//!
//! Routing state is cached aggressively because the id space is
//! append-only: a document → site assignment never changes once made, so
//! the cached table only refreshes when a query names a document beyond
//! its end; documents beyond even the *controller's* table route to the
//! last shard, exactly like the in-process router.
//!
//! The *placement* cache is not append-only — owners move on failover
//! and rejoin — so it is **evicted** the moment a node answers
//! `NotOwner`, and every refresh prunes pooled connections to addresses
//! no longer in the placement. Pooled connections themselves are lazily
//! reconnected: a call over a stale stream (the peer restarted since it
//! was parked) falls through to one fresh dial before the failure
//! surfaces, so a node restart costs callers a reconnect, not an error.

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lmm_graph::sharding::ShardMap;
use lmm_graph::{DocId, SiteId};
use lmm_serve::{
    DocScore, LatencyHistogram, LatencyHistogramSnapshot, ServeError, ShardQuery, SiteTopK,
};

use crate::error::{ClusterError, Result};
use crate::retry::RetryPolicy;
use crate::transport::{FaultPlan, FramedConn, TransportError, WireCounters};
use crate::wire::Message;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connect/read/write timeout per call.
    pub io_timeout: Duration,
    /// Free gather retries before escalating (mirrors the in-process
    /// `ServeConfig::max_gather_retries`).
    pub max_gather_retries: usize,
    /// Retry discipline past the free retries: each escalation round
    /// re-fetches placement and sleeps a budgeted, jittered backoff step
    /// — the same [`RetryPolicy`] the controller and nodes use, so the
    /// whole fabric converges instead of stampeding.
    pub retry: RetryPolicy,
    /// Optional deterministic fault injection on this client's sends.
    pub fault: Option<FaultPlan>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            io_timeout: Duration::from_secs(2),
            max_gather_retries: 4,
            retry: RetryPolicy::default(),
            fault: None,
        }
    }
}

/// The placement a client caches: one committed cluster epoch's shard map
/// and owner addresses.
#[derive(Debug)]
struct PlacementView {
    epoch: u64,
    rank_epoch: u64,
    map: ShardMap,
    owners: Vec<String>,
}

#[derive(Default)]
struct ClientState {
    placement: Option<Arc<PlacementView>>,
    /// Cached document → site routing (append-only, prefix-stable).
    site_of: Vec<u64>,
}

/// One reply of a scatter/gather round: `(shard, message)`.
type ShardReply = (u64, Message);
/// Builds the per-shard requests of one gather round from the placement
/// the round will run against.
type GatherPlan<'a> = &'a dyn Fn(&PlacementView) -> Result<Vec<ShardReply>>;
/// A converged gather: `(cluster_epoch, rank_epoch, replies)`.
type GatherOutcome = (u64, u64, Vec<ShardReply>);
/// Point-lookup batch grouped per shard: doc ids plus their positions in
/// the caller's input order.
type ShardBatches = BTreeMap<u64, (Vec<u64>, Vec<usize>)>;

/// Plain-value client counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Gathers retried on an epoch mismatch.
    pub gather_retries: u64,
    /// Gathers that escalated to placement-refresh rounds.
    pub gather_escalations: u64,
    /// Node calls that failed at the transport.
    pub node_failures: u64,
    /// Placement fetches from the controller.
    pub placement_refreshes: u64,
    /// Routing-table fetches from the controller.
    pub routing_refreshes: u64,
    /// Cached placements evicted after a `NotOwner` answer.
    pub placement_evictions: u64,
    /// Stale pooled connections replaced by a fresh dial.
    pub reconnects: u64,
    /// Bytes written / read by this client.
    pub bytes: (u64, u64),
    /// End-to-end latency of every `ShardQuery` call (success or error)
    /// — the same log2 buckets the in-process tier reports, so a
    /// dashboard can overlay the wire and in-process distributions.
    pub query_latency: LatencyHistogramSnapshot,
}

/// A cluster query client. Cheap to share behind an `Arc`; all methods
/// take `&self`.
pub struct ClusterClient {
    controller: String,
    cfg: ClientConfig,
    state: Mutex<ClientState>,
    pool: Mutex<HashMap<String, FramedConn>>,
    counters: Arc<WireCounters>,
    next_conn: AtomicU64,
    /// Per-gather salt: desynchronizes concurrent gathers' jitter
    /// streams without touching the shared budget.
    next_op: AtomicU64,
    gather_retries: AtomicU64,
    gather_escalations: AtomicU64,
    node_failures: AtomicU64,
    placement_refreshes: AtomicU64,
    routing_refreshes: AtomicU64,
    placement_evictions: AtomicU64,
    reconnects: AtomicU64,
    query_latency: LatencyHistogram,
}

fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Serving order for cross-shard merges: score descending, ties by id
/// ascending — identical to the in-process tier. Scores come off the
/// wire, so a non-finite value (hostile peer) sorts as equal instead of
/// panicking.
fn serve_cmp(a: &(DocId, f64), b: &(DocId, f64)) -> CmpOrdering {
    b.1.partial_cmp(&a.1)
        .unwrap_or(CmpOrdering::Equal)
        .then(a.0.cmp(&b.0))
}

impl ClusterClient {
    /// Creates a client against the controller at `controller_addr`. No
    /// network traffic happens until the first query.
    #[must_use]
    pub fn new(controller_addr: &str, cfg: ClientConfig) -> Self {
        Self {
            controller: controller_addr.to_string(),
            cfg,
            state: Mutex::new(ClientState::default()),
            pool: Mutex::new(HashMap::new()),
            counters: Arc::new(WireCounters::default()),
            next_conn: AtomicU64::new(0),
            next_op: AtomicU64::new(0),
            gather_retries: AtomicU64::new(0),
            gather_escalations: AtomicU64::new(0),
            node_failures: AtomicU64::new(0),
            placement_refreshes: AtomicU64::new(0),
            routing_refreshes: AtomicU64::new(0),
            placement_evictions: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            query_latency: LatencyHistogram::default(),
        }
    }

    /// Times one query-surface call into the client's latency histogram.
    /// Errors are recorded too: a failed gather is latency a caller paid.
    fn timed<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let start = Instant::now();
        let out = f();
        self.query_latency.record(start.elapsed());
        out
    }

    /// This client's counters.
    #[must_use]
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            gather_retries: self.gather_retries.load(Ordering::Relaxed),
            gather_escalations: self.gather_escalations.load(Ordering::Relaxed),
            node_failures: self.node_failures.load(Ordering::Relaxed),
            placement_refreshes: self.placement_refreshes.load(Ordering::Relaxed),
            routing_refreshes: self.routing_refreshes.load(Ordering::Relaxed),
            placement_evictions: self.placement_evictions.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            bytes: self.counters.totals(),
            query_latency: self.query_latency.snapshot(),
        }
    }

    /// The `(cluster epoch, rank epoch)` pair of a freshly fetched
    /// placement.
    ///
    /// # Errors
    /// [`ClusterError::NotPublished`] before the first publish;
    /// [`ClusterError::ControllerUnavailable`] when the controller is
    /// gone.
    pub fn epochs(&self) -> Result<(u64, u64)> {
        let view = self.placement(true)?;
        Ok((view.epoch, view.rank_epoch))
    }

    // -- connections --------------------------------------------------------

    /// Runs `f` over a pooled (or freshly dialed) connection to `addr`.
    /// The connection returns to the pool only on success — any error
    /// drops it, so a poisoned stream never serves a later call.
    ///
    /// A pooled stream can be *stale*: the peer restarted (or the pool
    /// outlived a partition) since it was parked. Every call made through
    /// here is idempotent, so a transport failure on a pooled stream
    /// falls through to exactly one fresh dial before surfacing — the
    /// lazy reconnect that makes node restarts invisible to callers.
    /// Wire errors are typed peer answers, not staleness, and surface
    /// immediately.
    fn with_conn<T>(
        &self,
        addr: &str,
        mut f: impl FnMut(&mut FramedConn) -> std::result::Result<T, TransportError>,
    ) -> std::result::Result<T, TransportError> {
        // Bind the pooled entry first: an `if let` on the locked pool
        // would hold the guard across the whole block (and deadlock on
        // the re-insert).
        let pooled = lock_clean(&self.pool).remove(addr);
        if let Some(mut conn) = pooled {
            match f(&mut conn) {
                Ok(out) => {
                    lock_clean(&self.pool).insert(addr.to_string(), conn);
                    return Ok(out);
                }
                Err(e @ TransportError::Wire(_)) => return Err(e),
                Err(_) => {
                    self.reconnects.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let conn = FramedConn::connect(addr, self.cfg.io_timeout, Arc::clone(&self.counters))?;
        let mut conn = match &self.cfg.fault {
            Some(plan) => conn.with_faults(Arc::new(
                plan.injector(self.next_conn.fetch_add(1, Ordering::Relaxed)),
            )),
            None => conn,
        };
        let out = f(&mut conn)?;
        lock_clean(&self.pool).insert(addr.to_string(), conn);
        Ok(out)
    }

    fn call_node(&self, addr: &str, msg: &Message) -> Result<Message> {
        let reply = self.with_conn(addr, |conn| conn.call(msg)).map_err(|e| {
            self.node_failures.fetch_add(1, Ordering::Relaxed);
            match e {
                TransportError::Wire(w) => ClusterError::Wire(w),
                other => ClusterError::NodeUnavailable {
                    addr: addr.to_string(),
                    detail: other.to_string(),
                },
            }
        })?;
        match reply {
            // Placement moved under us (failover or a rejoin handing
            // shards home). The cached view is *wrong*, not merely old —
            // evict it so the retry re-fetches instead of re-asking the
            // same non-owner.
            Message::NotOwner { shard } => {
                lock_clean(&self.state).placement = None;
                self.placement_evictions.fetch_add(1, Ordering::Relaxed);
                Err(ClusterError::NodeUnavailable {
                    addr: addr.to_string(),
                    detail: format!("no longer owns shard {shard}"),
                })
            }
            Message::Bad { detail } => Err(ClusterError::Protocol { detail }),
            other => Ok(other),
        }
    }

    fn call_controller(&self, msg: &Message) -> Result<Message> {
        let controller = self.controller.clone();
        let reply = self
            .with_conn(&controller, |conn| conn.call(msg))
            .map_err(|e| ClusterError::ControllerUnavailable {
                detail: format!("{controller}: {e}"),
            })?;
        match reply {
            Message::Bad { detail } => Err(ClusterError::Protocol { detail }),
            other => Ok(other),
        }
    }

    // -- placement & routing ------------------------------------------------

    fn placement(&self, refresh: bool) -> Result<Arc<PlacementView>> {
        if !refresh {
            if let Some(view) = lock_clean(&self.state).placement.clone() {
                return Ok(view);
            }
        }
        let reply = self.call_controller(&Message::PlacementReq)?;
        let Message::Placement {
            epoch,
            rank_epoch,
            boundaries,
            owners,
        } = reply
        else {
            return Err(ClusterError::Protocol {
                detail: format!("expected Placement, got {reply:?}"),
            });
        };
        if epoch == 0 {
            return Err(ClusterError::NotPublished);
        }
        let map = ShardMap::from_boundaries(boundaries.iter().map(|&b| b as usize).collect())
            .map_err(|e| ClusterError::Protocol {
                detail: format!("controller sent an invalid shard map: {e}"),
            })?;
        if owners.len() != map.n_shards() {
            return Err(ClusterError::Protocol {
                detail: format!(
                    "placement names {} owners for {} shards",
                    owners.len(),
                    map.n_shards()
                ),
            });
        }
        self.placement_refreshes.fetch_add(1, Ordering::Relaxed);
        let view = Arc::new(PlacementView {
            epoch,
            rank_epoch,
            map,
            owners,
        });
        lock_clean(&self.state).placement = Some(Arc::clone(&view));
        // Prune pooled connections to addresses the new placement no
        // longer names — dead nodes' streams would otherwise linger until
        // some call tripped over them.
        lock_clean(&self.pool)
            .retain(|addr, _| *addr == self.controller || view.owners.contains(addr));
        Ok(view)
    }

    /// The shard owning `doc` under `view`. Documents beyond the cached
    /// routing table trigger one refresh; documents beyond even the
    /// controller's table fall into the last shard (growth absorbs
    /// there), exactly like the in-process router.
    fn shard_of_doc(&self, view: &PlacementView, doc: DocId) -> Result<usize> {
        {
            let state = lock_clean(&self.state);
            if let Some(&site) = state.site_of.get(doc.index()) {
                return Ok(view.map.shard_of_site(SiteId(site as usize)));
            }
        }
        let reply = self.call_controller(&Message::RoutingReq)?;
        let Message::Routing { site_of, .. } = reply else {
            return Err(ClusterError::Protocol {
                detail: format!("expected Routing, got {reply:?}"),
            });
        };
        self.routing_refreshes.fetch_add(1, Ordering::Relaxed);
        let mut state = lock_clean(&self.state);
        // Append-only ids: never shrink the cache (a concurrent publish
        // may have answered with an older, shorter table).
        if site_of.len() > state.site_of.len() {
            state.site_of = site_of;
        }
        match state.site_of.get(doc.index()) {
            Some(&site) => Ok(view.map.shard_of_site(SiteId(site as usize))),
            None => Ok(view.map.n_shards() - 1),
        }
    }

    // -- the consistent gather ----------------------------------------------

    /// Scatters one request per shard (built by `plan` from the placement
    /// it will run against) and collects replies until every reply
    /// carries the same cluster epoch. Retries absorb straddled publishes
    /// and dead nodes; escalation re-fetches placement and backs off per
    /// the shared [`RetryPolicy`] until the budget is spent or the
    /// cluster re-converges.
    fn consistent_gather(&self, plan: GatherPlan<'_>) -> Result<GatherOutcome> {
        let mut refresh = false;
        let mut last_err: Option<ClusterError> = None;
        let mut schedule = self
            .cfg
            .retry
            .begin(self.next_op.fetch_add(1, Ordering::Relaxed));
        let mut rounds = 0usize;
        let mut escalated = false;
        loop {
            if rounds > self.cfg.max_gather_retries {
                if !escalated {
                    escalated = true;
                    self.gather_escalations.fetch_add(1, Ordering::Relaxed);
                }
                if !schedule.backoff_and_retry() {
                    break;
                }
                refresh = true;
            }
            rounds += 1;
            let view = match self.placement(refresh) {
                Ok(view) => view,
                Err(e @ ClusterError::NotPublished) => return Err(e),
                Err(e @ ClusterError::ControllerUnavailable { .. }) => return Err(e),
                Err(e) => {
                    last_err = Some(e);
                    refresh = true;
                    continue;
                }
            };
            refresh = false;
            let requests = plan(&view)?;
            let mut replies = Vec::with_capacity(requests.len());
            let mut epochs: Option<(u64, u64)> = None;
            let mut mixed = false;
            let mut failed: Option<ClusterError> = None;
            for (shard, request) in requests {
                let addr = &view.owners[shard as usize];
                match self.call_node(addr, &request) {
                    Ok(reply) => {
                        let Some(pair) = reply_epochs(&reply) else {
                            return Err(ClusterError::Protocol {
                                detail: format!("unexpected reply to a shard query: {reply:?}"),
                            });
                        };
                        mixed |= *epochs.get_or_insert(pair) != pair;
                        replies.push((shard, reply));
                    }
                    Err(e) if e.is_retriable() => {
                        failed = Some(e);
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if let Some(e) = failed {
                last_err = Some(e);
                refresh = true;
                self.gather_retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if mixed {
                self.gather_retries.fetch_add(1, Ordering::Relaxed);
                last_err = None;
                continue;
            }
            let (epoch, rank_epoch) = epochs.unwrap_or((view.epoch, view.rank_epoch));
            return Ok((epoch, rank_epoch, replies));
        }
        Err(last_err.unwrap_or(ClusterError::Inconsistent { rounds }))
    }

    // -- the query surface --------------------------------------------------

    /// Global score of one document, answered at one epoch.
    ///
    /// # Errors
    /// Typed `ServeError`s for unknown/tombstoned documents; retriable
    /// cluster errors for dead nodes and unsettled publishes.
    pub fn score(&self, doc: DocId) -> Result<(u64, f64)> {
        self.timed(|| {
            let (epoch, scores) = self.score_batch_inner(&[doc])?;
            Ok((epoch, scores[0]))
        })
    }

    /// Batched scores, grouped per shard, all answered from one cluster
    /// epoch.
    ///
    /// # Errors
    /// See [`ClusterClient::score`].
    pub fn score_batch(&self, docs: &[DocId]) -> Result<(u64, Vec<f64>)> {
        self.timed(|| self.score_batch_inner(docs))
    }

    fn score_batch_inner(&self, docs: &[DocId]) -> Result<(u64, Vec<f64>)> {
        if docs.is_empty() {
            let view = self.placement(false)?;
            return Ok((view.rank_epoch, Vec::new()));
        }
        let group = |view: &PlacementView| -> Result<ShardBatches> {
            let mut per_shard = ShardBatches::new();
            for (pos, &doc) in docs.iter().enumerate() {
                let shard = self.shard_of_doc(view, doc)? as u64;
                let entry = per_shard.entry(shard).or_default();
                entry.0.push(doc.index() as u64);
                entry.1.push(pos);
            }
            Ok(per_shard)
        };
        let (_, rank_epoch, replies) = self.consistent_gather(&|view| {
            Ok(group(view)?
                .into_iter()
                .map(|(shard, (docs, _))| (shard, Message::ScoreBatch { shard, docs }))
                .collect())
        })?;
        // Re-derive the grouping from the *current* placement to pair
        // positions with replies. The doc → site table is append-only and
        // the gather pinned one epoch, so the grouping is stable within a
        // successful gather.
        let view = self.placement(false)?;
        let per_shard = group(&view)?;
        let mut out = vec![0.0f64; docs.len()];
        for (shard, reply) in replies {
            let Message::Scores { scores, .. } = reply else {
                return Err(ClusterError::Protocol {
                    detail: "score batch answered with a non-Scores reply".into(),
                });
            };
            let Some((_, positions)) = per_shard.get(&shard) else {
                return Err(ClusterError::Protocol {
                    detail: format!("reply for shard {shard} nobody asked about"),
                });
            };
            if positions.len() != scores.len() {
                return Err(ClusterError::Protocol {
                    detail: format!(
                        "shard {shard} answered {} scores for {} documents",
                        scores.len(),
                        positions.len()
                    ),
                });
            }
            for (&pos, score) in positions.iter().zip(scores) {
                out[pos] = doc_score_to_result(score, docs[pos], rank_epoch)?;
            }
        }
        Ok((rank_epoch, out))
    }

    /// Global top-`k` across every shard, merged in serving order, all
    /// partials from one cluster epoch.
    ///
    /// # Errors
    /// Retriable cluster errors; see [`ClusterClient::score`].
    pub fn top_k(&self, k: usize) -> Result<(u64, Vec<(DocId, f64)>)> {
        self.timed(|| self.top_k_inner(k))
    }

    fn top_k_inner(&self, k: usize) -> Result<(u64, Vec<(DocId, f64)>)> {
        let (_, rank_epoch, replies) = self.consistent_gather(&|view| {
            Ok((0..view.map.n_shards() as u64)
                .map(|shard| (shard, Message::TopKReq { shard, k: k as u64 }))
                .collect())
        })?;
        let mut merged: Vec<(DocId, f64)> = Vec::with_capacity(k.saturating_mul(2));
        for (_, reply) in replies {
            let Message::Top { entries, .. } = reply else {
                return Err(ClusterError::Protocol {
                    detail: "top-k answered with a non-Top reply".into(),
                });
            };
            merged.extend(entries);
        }
        merged.sort_unstable_by(serve_cmp);
        merged.truncate(k);
        Ok((rank_epoch, merged))
    }

    /// Top-`k` within one site, routed to the owning shard's node.
    ///
    /// # Errors
    /// Typed `ServeError`s for unknown/tombstoned sites; see
    /// [`ClusterClient::score`].
    pub fn top_k_for_site(&self, site: SiteId, k: usize) -> Result<(u64, Vec<(DocId, f64)>)> {
        self.timed(|| self.top_k_for_site_inner(site, k))
    }

    fn top_k_for_site_inner(&self, site: SiteId, k: usize) -> Result<(u64, Vec<(DocId, f64)>)> {
        let (_, rank_epoch, mut replies) = self.consistent_gather(&|view| {
            let shard = view.map.shard_of_site(site) as u64;
            Ok(vec![(
                shard,
                Message::SiteTopKReq {
                    shard,
                    site: site.index() as u64,
                    k: k as u64,
                },
            )])
        })?;
        let Some((_, Message::SiteTop { reply, .. })) = replies.pop() else {
            return Err(ClusterError::Protocol {
                detail: "site top-k answered with a non-SiteTop reply".into(),
            });
        };
        match reply {
            SiteTopK::Entries(entries) => Ok((rank_epoch, entries)),
            SiteTopK::Tombstoned => Err(ServeError::TombstonedSite {
                site: site.index(),
                epoch: rank_epoch,
            }
            .into()),
            SiteTopK::NotCovered => Err(ServeError::UnknownSite {
                site: site.index(),
                epoch: rank_epoch,
            }
            .into()),
        }
    }

    /// Compares two documents at one epoch: `Greater` means `a` outranks
    /// `b`, ties break toward the lower id — the tier-wide serving order.
    ///
    /// # Errors
    /// See [`ClusterClient::score`].
    pub fn compare(&self, a: DocId, b: DocId) -> Result<(u64, CmpOrdering)> {
        self.timed(|| {
            let (epoch, scores) = self.score_batch_inner(&[a, b])?;
            let order = scores[0]
                .partial_cmp(&scores[1])
                .unwrap_or(CmpOrdering::Equal)
                .then(b.cmp(&a));
            Ok((epoch, order))
        })
    }
}

fn reply_epochs(reply: &Message) -> Option<(u64, u64)> {
    match reply {
        Message::Scores {
            epoch, rank_epoch, ..
        }
        | Message::Top {
            epoch, rank_epoch, ..
        }
        | Message::SiteTop {
            epoch, rank_epoch, ..
        } => Some((*epoch, *rank_epoch)),
        _ => None,
    }
}

fn doc_score_to_result(score: DocScore, doc: DocId, epoch: u64) -> Result<f64> {
    match score {
        DocScore::Live(v) => Ok(v),
        DocScore::Tombstoned => Err(ServeError::TombstonedDoc {
            doc: doc.index(),
            epoch,
        }
        .into()),
        DocScore::Unknown => Err(ServeError::UnknownDoc {
            doc: doc.index(),
            epoch,
        }
        .into()),
    }
}

impl ShardQuery for ClusterClient {
    type Error = ClusterError;

    /// The rank epoch the controller currently publishes, refreshed over
    /// the wire; falls back to the cached placement when the controller
    /// is unreachable (`0` before any publish is visible).
    fn serving_epoch(&self) -> u64 {
        if let Ok(view) = self.placement(true) {
            return view.rank_epoch;
        }
        lock_clean(&self.state)
            .placement
            .as_ref()
            .map_or(0, |view| view.rank_epoch)
    }

    fn score(&self, doc: DocId) -> Result<(u64, f64)> {
        ClusterClient::score(self, doc)
    }

    fn score_batch(&self, docs: &[DocId]) -> Result<(u64, Vec<f64>)> {
        ClusterClient::score_batch(self, docs)
    }

    fn top_k(&self, k: usize) -> Result<(u64, Vec<(DocId, f64)>)> {
        ClusterClient::top_k(self, k)
    }

    fn top_k_for_site(&self, site: SiteId, k: usize) -> Result<(u64, Vec<(DocId, f64)>)> {
        ClusterClient::top_k_for_site(self, site, k)
    }

    fn compare(&self, a: DocId, b: DocId) -> Result<(u64, CmpOrdering)> {
        ClusterClient::compare(self, a, b)
    }
}
