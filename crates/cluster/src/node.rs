//! A shard node: owns a set of `ShardState`s behind a `TcpListener`.
//!
//! The node is deliberately dumb — all placement and grading intelligence
//! lives in the controller. It registers, answers heartbeats, applies
//! two-phase publishes (stage segments, commit the epoch flip), and
//! serves queries tagged with its committed **cluster epoch** and the
//! **rank epoch** of the snapshot it serves. The two are distinct on
//! purpose: failover republishes the *same* rank epoch under a *new*
//! cluster epoch, and clients key gather consistency on the cluster
//! epoch — so "same data, new placement" never reads as "same epoch,
//! different data".
//!
//! Concurrency model: one accept thread (non-blocking poll so shutdown is
//! prompt), one thread per accepted connection. Serving state swaps
//! atomically under a mutex held only for the pointer swap and `Arc`
//! clones — query compute happens off-lock.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lmm_engine::SnapshotSegment;
use lmm_graph::{DocId, SiteId};
use lmm_serve::{DocScore, ShardState, SiteTopK, SwapGrade};

use crate::error::{ClusterError, Result};
use crate::retry::RetryPolicy;
use crate::transport::{FaultPlan, FramedConn, TransportError, WireCounters};
use crate::wire::{Message, NodeWireStats};

/// Shard-node tuning knobs.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Per-shard precomputed top-k capacity (as in the in-process tier).
    pub heap_k: usize,
    /// Read/write timeout on every connection.
    pub io_timeout: Duration,
    /// How often idle connection threads check the shutdown flag.
    pub poll: Duration,
    /// How long a staged-but-uncommitted epoch set may wait for its
    /// commit before the node garbage-collects it. A publishing
    /// controller that dies (or silently gives up) between stage and
    /// commit must not leave segments pinned forever — and a commit for
    /// an expired set is refused, so a resurrected controller cannot
    /// flip the node onto a stale epoch.
    pub stage_ttl: Duration,
    /// Retry discipline for registration and rejoin with the controller
    /// (kept modest by default so a genuinely absent controller fails in
    /// tens of milliseconds, not the full chaos-grade budget).
    pub retry: RetryPolicy,
    /// Optional deterministic fault injection on this node's accepted
    /// connections (both directions).
    pub fault: Option<FaultPlan>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            heap_k: 64,
            io_timeout: Duration::from_secs(2),
            poll: Duration::from_millis(25),
            stage_ttl: Duration::from_secs(60),
            retry: RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            fault: None,
        }
    }
}

/// What the node currently serves: one committed cluster epoch, one rank
/// epoch, and the owned shard stores. Swapped wholesale at commit.
#[derive(Default)]
struct Serving {
    epoch: u64,
    rank_epoch: u64,
    shards: HashMap<u64, Arc<ShardState>>,
}

/// The pending stage set for one not-yet-committed cluster epoch. A stage
/// at a newer epoch supersedes (clears) an older uncommitted set, and a
/// set that outlives [`NodeConfig::stage_ttl`] is expired.
#[derive(Default)]
struct Staged {
    epoch: u64,
    entries: HashMap<u64, (SwapGrade, Option<SnapshotSegment>)>,
    /// When the set's most recent stage arrived (TTL clock).
    at: Option<Instant>,
}

struct NodeInner {
    /// Assigned at construction and never reassigned (a rejoin keeps the
    /// id), so no atomicity is needed.
    node_id: u64,
    addr: String,
    cfg: NodeConfig,
    shutdown: AtomicBool,
    serving: Mutex<Serving>,
    staged: Mutex<Staged>,
    /// Highest cluster epoch the controller has explicitly aborted; stage
    /// and commit at or below it are refused, so a dead epoch can never
    /// be committed by a late or replayed message.
    last_aborted: AtomicU64,
    counters: Arc<WireCounters>,
    next_conn: AtomicU64,
    queries: AtomicU64,
    tombstone_rejections: AtomicU64,
    staged_count: AtomicU64,
    commits: AtomicU64,
    aborted: AtomicU64,
    staged_expired: AtomicU64,
}

/// A running shard node. Dropping the handle does **not** stop the node;
/// call [`ShardNode::kill`].
pub struct ShardNode {
    inner: Arc<NodeInner>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ShardNode {
    /// Binds a loopback listener, registers with the controller at
    /// `controller_addr`, and starts serving.
    ///
    /// # Errors
    /// [`ClusterError::InvalidConfig`] for a zero `heap_k`;
    /// [`ClusterError::ControllerUnavailable`] or
    /// [`ClusterError::RetryExhausted`] when registration fails past the
    /// config's retry budget.
    pub fn start(controller_addr: &str, cfg: NodeConfig) -> Result<Self> {
        Self::launch(controller_addr, cfg, None)
    }

    /// Restarts a killed node: binds a *fresh* listener (the old port is
    /// gone with the old process) and announces itself to the controller
    /// under the node id of its previous incarnation. The controller
    /// re-admits the id, restores its former shard claim, and catches the
    /// node up by republishing the pinned snapshot under a bumped cluster
    /// epoch — the rank epoch is untouched, the same two-epoch discipline
    /// as failover. Until that catch-up publish commits, the node answers
    /// `NotOwner` (a retriable condition clients already handle).
    ///
    /// # Errors
    /// See [`ShardNode::start`].
    pub fn restart(controller_addr: &str, prior_node: u64, cfg: NodeConfig) -> Result<Self> {
        Self::launch(controller_addr, cfg, Some(prior_node))
    }

    fn launch(controller_addr: &str, cfg: NodeConfig, prior: Option<u64>) -> Result<Self> {
        if cfg.heap_k == 0 {
            return Err(ClusterError::InvalidConfig {
                reason: "heap_k must be at least 1".into(),
            });
        }
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| ClusterError::InvalidConfig {
                reason: format!("cannot bind a loopback listener: {e}"),
            })?;
        let addr = listener
            .local_addr()
            .map_err(|e| ClusterError::InvalidConfig {
                reason: format!("listener has no local address: {e}"),
            })?
            .to_string();
        let counters = Arc::new(WireCounters::default());
        // Register before serving: the controller must know us before any
        // publish can place shards here. The listener is already bound,
        // so a catch-up stage racing in right after the reply parks in
        // the TCP backlog until the accept loop spins up.
        let node = register_with_controller(controller_addr, &addr, prior, &cfg, &counters)?;
        let inner = Arc::new(NodeInner {
            node_id: node,
            addr,
            cfg,
            shutdown: AtomicBool::new(false),
            serving: Mutex::new(Serving::default()),
            staged: Mutex::new(Staged::default()),
            last_aborted: AtomicU64::new(0),
            counters,
            next_conn: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            tombstone_rejections: AtomicU64::new(0),
            staged_count: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            staged_expired: AtomicU64::new(0),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let inner = Arc::clone(&inner);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&listener, &inner, &conns))
        };
        Ok(Self {
            inner,
            accept: Some(accept),
            conns,
        })
    }

    /// The node's listen address (`ip:port`).
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.inner.addr
    }

    /// The controller-assigned node id.
    #[must_use]
    pub fn node_id(&self) -> u64 {
        self.inner.node_id
    }

    /// The committed `(cluster epoch, rank epoch)` pair.
    #[must_use]
    pub fn epochs(&self) -> (u64, u64) {
        let s = lock_clean(&self.inner.serving);
        (s.epoch, s.rank_epoch)
    }

    /// This node's counters, as they would go over the wire.
    #[must_use]
    pub fn local_stats(&self) -> NodeWireStats {
        self.inner.wire_stats()
    }

    /// Stops the node abruptly: in-flight connections are wound down, the
    /// listener closes, and — crucially for the failover story — the
    /// controller is *not* told. It finds out the way real clusters do:
    /// missed heartbeats.
    pub fn kill(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *lock_clean(&self.conns));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Locks a mutex, recovering from poisoning (node state is swapped
/// wholesale, so a panicked peer thread cannot leave it torn).
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Registers (or rejoins) with the controller under the node's retry
/// policy: transport hiccups back off and retry, protocol violations
/// surface immediately.
fn register_with_controller(
    controller_addr: &str,
    addr: &str,
    prior: Option<u64>,
    cfg: &NodeConfig,
    counters: &Arc<WireCounters>,
) -> Result<u64> {
    let hello = match prior {
        Some(node) => Message::Rejoin {
            node,
            addr: addr.to_string(),
        },
        None => Message::Register {
            addr: addr.to_string(),
        },
    };
    let salt = addr.bytes().fold(prior.unwrap_or(0), |acc, b| {
        acc.rotate_left(8) ^ u64::from(b)
    });
    let mut schedule = cfg.retry.begin(salt);
    loop {
        let attempt = (|| -> Result<u64> {
            let mut ctrl =
                FramedConn::connect(controller_addr, cfg.io_timeout, Arc::clone(counters))
                    .map_err(|e| ClusterError::ControllerUnavailable {
                        detail: format!("dial {controller_addr}: {e}"),
                    })?;
            let reply = ctrl
                .call(&hello)
                .map_err(|e| ClusterError::ControllerUnavailable {
                    detail: format!("register with {controller_addr}: {e}"),
                })?;
            match reply {
                Message::Registered { node } => Ok(node),
                other => Err(ClusterError::Protocol {
                    detail: format!("expected Registered, got {other:?}"),
                }),
            }
        })();
        match attempt {
            Ok(node) => return Ok(node),
            err @ Err(ClusterError::Protocol { .. }) => return err,
            Err(e) => {
                if !schedule.backoff_and_retry() {
                    return if schedule.attempts() == 0 {
                        // No retry was ever granted: surface the plain
                        // cause, not a budget complaint.
                        Err(e)
                    } else {
                        Err(ClusterError::RetryExhausted {
                            op: if prior.is_some() {
                                "rejoin"
                            } else {
                                "register"
                            },
                            attempts: schedule.attempts() + 1,
                            detail: e.to_string(),
                        })
                    };
                }
            }
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    inner: &Arc<NodeInner>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(inner);
                let handle = std::thread::spawn(move || conn_loop(stream, &inner));
                lock_clean(conns).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // The idle poll doubles as a node-local GC tick: a staged
                // set whose publisher died stage/commit-gap is reclaimed
                // even if no controller ever connects again (the commit-
                // time expiry check keeps the safety property; this keeps
                // the memory from staying pinned indefinitely).
                inner.expire_stale_stage();
                std::thread::sleep(inner.cfg.poll);
            }
            Err(_) => break,
        }
    }
}

fn conn_loop(stream: TcpStream, inner: &Arc<NodeInner>) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let Ok(conn) =
        FramedConn::from_stream(stream, inner.cfg.io_timeout, Arc::clone(&inner.counters))
    else {
        return;
    };
    let mut conn = match &inner.cfg.fault {
        Some(plan) => conn.with_faults(Arc::new(
            plan.injector(inner.next_conn.fetch_add(1, Ordering::Relaxed)),
        )),
        None => conn,
    };
    loop {
        let msg = conn.recv_idle(&mut || !inner.shutdown.load(Ordering::SeqCst));
        let msg = match msg {
            Ok(msg) => msg,
            // TimedOut here means the shutdown flag flipped while idle;
            // Closed/Io means the peer went away. Either way: wind down.
            Err(TransportError::TimedOut | TransportError::Closed | TransportError::Io(_)) => {
                return
            }
            Err(TransportError::Wire(e)) => {
                // Garbage on the wire: answer typed, then keep serving.
                if conn
                    .send(&Message::Bad {
                        detail: e.to_string(),
                    })
                    .is_err()
                {
                    return;
                }
                continue;
            }
        };
        let reply = inner.handle(msg);
        if conn.send(&reply).is_err() {
            return;
        }
    }
}

impl NodeInner {
    fn handle(&self, msg: Message) -> Message {
        match msg {
            Message::Ping { seq } => {
                // Heartbeats double as the staged-epoch GC tick: a set
                // whose publisher went silent is expired here even if no
                // further stage or commit ever arrives.
                self.expire_stale_stage();
                let epoch = lock_clean(&self.serving).epoch;
                Message::Pong { seq, epoch }
            }
            Message::Stage {
                epoch,
                shard,
                grade,
                segment,
            } => self.stage(epoch, shard, grade, segment),
            Message::Commit { epoch, rank_epoch } => self.commit(epoch, rank_epoch),
            Message::Abort { epoch } => self.abort(epoch),
            Message::ScoreBatch { shard, docs } => self.score_batch(shard, &docs),
            Message::TopKReq { shard, k } => self.top_k(shard, k),
            Message::SiteTopKReq { shard, site, k } => self.site_top_k(shard, site, k),
            Message::StatsReq => Message::Stats(self.wire_stats()),
            other => Message::Bad {
                detail: format!("unexpected message at a shard node: {other:?}"),
            },
        }
    }

    /// Discards any staged set at or below the aborted epoch and refuses
    /// that epoch (and everything older) forever after. Idempotent — a
    /// replayed abort re-acks.
    fn abort(&self, epoch: u64) -> Message {
        // SeqCst: this watermark gates stage/commit acceptance — a Relaxed
        // store could let a racing late Stage slip past the abort (the
        // burnt-epoch class of bug from PR 7).
        self.last_aborted.fetch_max(epoch, Ordering::SeqCst);
        let mut staged = lock_clean(&self.staged);
        if !staged.entries.is_empty() && staged.epoch <= epoch {
            staged.entries.clear();
            staged.at = None;
            self.aborted.fetch_add(1, Ordering::Relaxed);
        }
        Message::Ack { epoch }
    }

    /// Clears a staged set that outlived the stage TTL, counting it.
    /// Returns `true` when something was expired.
    fn expire_locked(&self, staged: &mut Staged) -> bool {
        let expired = !staged.entries.is_empty()
            && staged
                .at
                .is_some_and(|at| at.elapsed() > self.cfg.stage_ttl);
        if expired {
            staged.entries.clear();
            staged.at = None;
            self.staged_expired.fetch_add(1, Ordering::Relaxed);
        }
        expired
    }

    fn expire_stale_stage(&self) {
        let mut staged = lock_clean(&self.staged);
        self.expire_locked(&mut staged);
    }

    fn stage(
        &self,
        epoch: u64,
        shard: u64,
        grade: SwapGrade,
        segment: Option<SnapshotSegment>,
    ) -> Message {
        if grade != SwapGrade::Repin && segment.is_none() {
            return Message::Bad {
                detail: format!("stage of shard {shard} grade {grade:?} carries no segment"),
            };
        }
        let aborted = self.last_aborted.load(Ordering::SeqCst);
        if epoch <= aborted && aborted > 0 {
            return Message::Bad {
                detail: format!("stage epoch {epoch} was aborted (last aborted {aborted})"),
            };
        }
        {
            let committed = lock_clean(&self.serving).epoch;
            if epoch <= committed {
                return Message::Bad {
                    detail: format!("stage epoch {epoch} is not past committed {committed}"),
                };
            }
        }
        let mut staged = lock_clean(&self.staged);
        self.expire_locked(&mut staged);
        if staged.epoch != epoch {
            // A newer publish supersedes any uncommitted older stage set.
            staged.entries.clear();
            staged.epoch = epoch;
        }
        staged.entries.insert(shard, (grade, segment));
        staged.at = Some(Instant::now());
        self.staged_count.fetch_add(1, Ordering::Relaxed);
        Message::Ack { epoch }
    }

    fn commit(&self, epoch: u64, rank_epoch: u64) -> Message {
        let mut serving = lock_clean(&self.serving);
        if serving.epoch == epoch {
            // Duplicate commit (a publish retry): already serving it.
            return Message::Ack { epoch };
        }
        let aborted = self.last_aborted.load(Ordering::SeqCst);
        if epoch <= aborted && aborted > 0 {
            return Message::Bad {
                detail: format!("commit of epoch {epoch} refused: epoch was aborted"),
            };
        }
        let mut staged = lock_clean(&self.staged);
        if self.expire_locked(&mut staged) {
            return Message::Bad {
                detail: format!(
                    "commit of epoch {epoch} refused: staged set expired after {:?}",
                    self.cfg.stage_ttl
                ),
            };
        }
        if staged.epoch != epoch || staged.entries.is_empty() {
            return Message::Bad {
                detail: format!(
                    "commit of epoch {epoch} but staged epoch is {} with {} shards",
                    staged.epoch,
                    staged.entries.len()
                ),
            };
        }
        let entries = std::mem::take(&mut staged.entries);
        let mut shards: HashMap<u64, Arc<ShardState>> = HashMap::with_capacity(entries.len());
        for (shard, (grade, segment)) in entries {
            let state = match (grade, segment) {
                (SwapGrade::Repin, _) => match serving.shards.get(&shard) {
                    Some(prev) => Arc::clone(prev),
                    None => {
                        return Message::Bad {
                            detail: format!("repin of shard {shard} without a prior store"),
                        }
                    }
                },
                (SwapGrade::Refresh, Some(seg)) => {
                    let snap = seg.to_snapshot();
                    match serving.shards.get(&shard) {
                        // Orders survived: re-merge the top under the
                        // redistributed scores — same path as in-process.
                        Some(prev) => Arc::new(prev.refresh(&snap, self.cfg.heap_k)),
                        // Defensive: a refresh-graded shard we never held
                        // (shouldn't happen; controller rebuilds movers).
                        None => Arc::new(ShardState::build(&snap, seg.sites, self.cfg.heap_k)),
                    }
                }
                (SwapGrade::Rebuild, Some(seg)) => {
                    let snap = seg.to_snapshot();
                    Arc::new(ShardState::build(&snap, seg.sites, self.cfg.heap_k))
                }
                (grade, None) => {
                    return Message::Bad {
                        detail: format!("commit found shard {shard} grade {grade:?} segment-less"),
                    }
                }
            };
            shards.insert(shard, state);
        }
        // The wholesale swap: shards not in the staged set are dropped —
        // the controller moved them elsewhere.
        *serving = Serving {
            epoch,
            rank_epoch,
            shards,
        };
        self.commits.fetch_add(1, Ordering::Relaxed);
        Message::Ack { epoch }
    }

    /// Pins `(epoch, rank_epoch, store)` for one owned shard — the lock is
    /// held only for the `Arc` clone, compute happens on the caller. The
    /// refusal is boxed: `Message` is frame-sized, the happy path isn't.
    fn pin(&self, shard: u64) -> std::result::Result<(u64, u64, Arc<ShardState>), Box<Message>> {
        let serving = lock_clean(&self.serving);
        match serving.shards.get(&shard) {
            Some(state) => Ok((serving.epoch, serving.rank_epoch, Arc::clone(state))),
            None => Err(Box::new(Message::NotOwner { shard })),
        }
    }

    fn score_batch(&self, shard: u64, docs: &[u64]) -> Message {
        let (epoch, rank_epoch, state) = match self.pin(shard) {
            Ok(pin) => pin,
            Err(refusal) => return *refusal,
        };
        self.queries.fetch_add(1, Ordering::Relaxed);
        let scores: Vec<DocScore> = docs
            .iter()
            .map(|&d| {
                let score = state.score(DocId(d as usize));
                if score == DocScore::Tombstoned {
                    self.tombstone_rejections.fetch_add(1, Ordering::Relaxed);
                }
                score
            })
            .collect();
        Message::Scores {
            epoch,
            rank_epoch,
            scores,
        }
    }

    fn top_k(&self, shard: u64, k: u64) -> Message {
        let (epoch, rank_epoch, state) = match self.pin(shard) {
            Ok(pin) => pin,
            Err(refusal) => return *refusal,
        };
        self.queries.fetch_add(1, Ordering::Relaxed);
        let (entries, complete) = state.top_k(k as usize);
        Message::Top {
            epoch,
            rank_epoch,
            entries,
            complete,
        }
    }

    fn site_top_k(&self, shard: u64, site: u64, k: u64) -> Message {
        let (epoch, rank_epoch, state) = match self.pin(shard) {
            Ok(pin) => pin,
            Err(refusal) => return *refusal,
        };
        self.queries.fetch_add(1, Ordering::Relaxed);
        let reply = state.site_top_k(SiteId(site as usize), k as usize);
        if reply == SiteTopK::Tombstoned {
            self.tombstone_rejections.fetch_add(1, Ordering::Relaxed);
        }
        Message::SiteTop {
            epoch,
            rank_epoch,
            reply,
        }
    }

    fn wire_stats(&self) -> NodeWireStats {
        let (epoch, rank_epoch, mut shard_docs) = {
            let serving = lock_clean(&self.serving);
            let docs: Vec<(u64, u64)> = serving
                .shards
                .iter()
                .map(|(&shard, state)| (shard, state.n_docs() as u64))
                .collect();
            (serving.epoch, serving.rank_epoch, docs)
        };
        shard_docs.sort_unstable();
        let (bytes_sent, bytes_recv) = self.counters.totals();
        NodeWireStats {
            node: self.node_id,
            epoch,
            rank_epoch,
            shard_docs,
            queries: self.queries.load(Ordering::Relaxed),
            tombstone_rejections: self.tombstone_rejections.load(Ordering::Relaxed),
            staged: self.staged_count.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            staged_expired: self.staged_expired.load(Ordering::Relaxed),
            bytes_sent,
            bytes_recv,
        }
    }
}
