//! Peer state: per-site compute peers and per-group protocol nodes.
//!
//! Two kinds of participants appear in the simulated deployment:
//!
//! * [`SitePeer`] — the compute side of one Web site: its intra-site
//!   subgraph and the local DocRank computation (Section 3.2, step 3),
//!   which "can be completely decentralized in a peer-to-peer search
//!   system";
//! * [`GroupNode`] — the protocol side of the distributed SiteRank: the
//!   owner of one *group* of sites' rank entries during the synchronous
//!   power iteration. In the flat architecture every group holds exactly
//!   one site; in the super-peer architecture a group is a super-peer's
//!   whole partition.

use std::collections::HashMap;

use crate::error::{P2pError, Result};
use lmm_graph::docgraph::DocGraph;
use lmm_graph::ids::SiteId;
use lmm_linalg::{CsrMatrix, PowerOptions};
use lmm_rank::pagerank::PageRank;
use lmm_rank::Ranking;

/// The compute peer of one Web site.
#[derive(Debug, Clone)]
pub struct SitePeer {
    site: usize,
    members: Vec<usize>,
    local_adjacency: CsrMatrix,
}

impl SitePeer {
    /// Extracts the peer's state (member docs + intra-site subgraph) from
    /// the document graph.
    #[must_use]
    pub fn from_graph(graph: &DocGraph, site: SiteId) -> Self {
        let sub = graph.site_subgraph(site);
        Self {
            site: site.index(),
            members: sub.members.iter().map(|d| d.index()).collect(),
            local_adjacency: sub.adjacency,
        }
    }

    /// The owned site index.
    #[must_use]
    pub fn site(&self) -> usize {
        self.site
    }

    /// Global doc ids of the site's pages (ascending).
    #[must_use]
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of local documents.
    #[must_use]
    pub fn n_docs(&self) -> usize {
        self.members.len()
    }

    /// Computes the local DocRank `π_D(s)` — PageRank over the intra-site
    /// subgraph. Purely local: no network traffic.
    ///
    /// # Errors
    /// Propagates PageRank failures.
    pub fn compute_local_rank(&self, damping: f64, power: &PowerOptions) -> Result<Ranking> {
        let mut pr = PageRank::new();
        pr.damping(damping)
            .tol(power.tol)
            .max_iters(power.max_iters);
        Ok(pr.run_adjacency(self.local_adjacency.clone())?.ranking)
    }
}

/// Contributions a group emits in one SiteRank round, already batched per
/// destination group.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundEmission {
    /// `(destination group, [(destination site, value)])` batches,
    /// ascending by group.
    pub batches: Vec<(usize, Vec<(usize, f64)>)>,
    /// Rank mass parked on the group's dangling sites this round.
    pub dangling_mass: f64,
    /// Residual of the group's previous update (`f64::INFINITY` before the
    /// first update) — piggybacked to the coordinator.
    pub residual: f64,
}

/// Protocol node owning a group of sites' SiteRank entries.
#[derive(Debug, Clone)]
pub struct GroupNode {
    group: usize,
    sites: Vec<usize>,
    position_of: HashMap<usize, usize>,
    /// Current rank entry per owned site.
    ranks: Vec<f64>,
    /// Accumulated inbound contributions per owned site (current round).
    inbox: Vec<f64>,
    /// Per owned site: normalized outgoing SiteLink row `(dst_site, w)`.
    out_rows: Vec<Vec<(usize, f64)>>,
    n_sites: usize,
    damping: f64,
    residual: f64,
}

impl GroupNode {
    /// Builds a node for `sites`, reading their transition rows from the
    /// row-normalized SiteGraph matrix.
    ///
    /// # Errors
    /// Returns [`P2pError::InvalidConfig`] for an empty group or an
    /// out-of-range site.
    pub fn new(
        group: usize,
        sites: Vec<usize>,
        site_transition: &CsrMatrix,
        damping: f64,
    ) -> Result<Self> {
        if sites.is_empty() {
            return Err(P2pError::InvalidConfig {
                reason: format!("group {group} owns no sites"),
            });
        }
        let n_sites = site_transition.nrows();
        let mut out_rows = Vec::with_capacity(sites.len());
        let mut position_of = HashMap::with_capacity(sites.len());
        for (pos, &s) in sites.iter().enumerate() {
            if s >= n_sites {
                return Err(P2pError::InvalidConfig {
                    reason: format!("group {group} references site {s} >= {n_sites}"),
                });
            }
            let (cols, vals) = site_transition.row(s);
            out_rows.push(cols.iter().copied().zip(vals.iter().copied()).collect());
            position_of.insert(s, pos);
        }
        let init = 1.0 / n_sites as f64;
        let n_owned = sites.len();
        Ok(Self {
            group,
            sites,
            position_of,
            ranks: vec![init; n_owned],
            inbox: vec![0.0; n_owned],
            out_rows,
            n_sites,
            damping,
            residual: f64::INFINITY,
        })
    }

    /// Group index.
    #[must_use]
    pub fn group(&self) -> usize {
        self.group
    }

    /// Owned sites.
    #[must_use]
    pub fn sites(&self) -> &[usize] {
        &self.sites
    }

    /// Current `(site, rank)` entries.
    pub fn ranks(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.sites.iter().copied().zip(self.ranks.iter().copied())
    }

    /// Rank entry of one owned site.
    ///
    /// # Panics
    /// Panics if the site is not owned by this group.
    #[must_use]
    pub fn rank_of(&self, site: usize) -> f64 {
        self.ranks[self.position_of[&site]]
    }

    /// Emits this round's contributions. Contributions whose destination
    /// site belongs to this group short-circuit into the local inbox (no
    /// network traffic) — the super-peer architecture's saving.
    ///
    /// `owner_of[site]` maps each site to its owning group.
    #[must_use]
    pub fn emit(&mut self, owner_of: &[usize]) -> RoundEmission {
        let mut batches: HashMap<usize, Vec<(usize, f64)>> = HashMap::new();
        let mut dangling_mass = 0.0;
        for (pos, out_row) in self.out_rows.iter().enumerate() {
            let rank = self.ranks[pos];
            if out_row.is_empty() {
                dangling_mass += rank;
                continue;
            }
            for &(dst_site, w) in out_row {
                let value = rank * w;
                let dst_group = owner_of[dst_site];
                if dst_group == self.group {
                    let dst_pos = self.position_of[&dst_site];
                    self.inbox[dst_pos] += value;
                } else {
                    batches
                        .entry(dst_group)
                        .or_default()
                        .push((dst_site, value));
                }
            }
        }
        let mut batches: Vec<_> = batches.into_iter().collect();
        batches.sort_unstable_by_key(|&(g, _)| g);
        for (_, entries) in &mut batches {
            entries.sort_unstable_by_key(|a| a.0);
        }
        RoundEmission {
            batches,
            dangling_mass,
            residual: self.residual,
        }
    }

    /// Absorbs a contribution batch from another group.
    ///
    /// # Errors
    /// Returns [`P2pError::UnknownPeer`] if an entry targets a site this
    /// group does not own.
    pub fn absorb(&mut self, entries: &[(usize, f64)]) -> Result<()> {
        for &(site, value) in entries {
            let pos = *self.position_of.get(&site).ok_or(P2pError::UnknownPeer {
                peer: site,
                n_peers: self.n_sites,
            })?;
            self.inbox[pos] += value;
        }
        Ok(())
    }

    /// Applies the PageRank update with the coordinator-provided global
    /// dangling mass: `new = d·(inbox + dangling/N) + (1−d)/N`, records the
    /// residual of the step, and clears the inbox for the next round.
    pub fn apply_update(&mut self, total_dangling_mass: f64) {
        let n = self.n_sites as f64;
        let teleport = (1.0 - self.damping) / n;
        let dangling_share = self.damping * total_dangling_mass / n;
        let mut residual = 0.0;
        for (pos, rank) in self.ranks.iter_mut().enumerate() {
            let new = self.damping * self.inbox[pos] + dangling_share + teleport;
            residual += (new - *rank).abs();
            *rank = new;
            self.inbox[pos] = 0.0;
        }
        self.residual = residual;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_graph::docgraph::DocGraphBuilder;
    use lmm_graph::sitegraph::{SiteGraph, SiteGraphOptions};
    use lmm_linalg::vec_ops;
    use lmm_rank::pagerank::PageRank;

    fn graph() -> DocGraph {
        let mut b = DocGraphBuilder::new();
        let a0 = b.add_doc("a", "u0");
        let a1 = b.add_doc("a", "u1");
        let c0 = b.add_doc("c", "u2");
        let d0 = b.add_doc("d", "u3");
        b.add_link(a0, a1).unwrap();
        b.add_link(a1, a0).unwrap();
        b.add_link(a1, c0).unwrap();
        b.add_link(c0, d0).unwrap();
        b.add_link(d0, a0).unwrap();
        b.build()
    }

    fn site_transition(g: &DocGraph) -> CsrMatrix {
        SiteGraph::from_doc_graph(g, &SiteGraphOptions::default())
            .to_stochastic()
            .unwrap()
            .into_matrix()
    }

    #[test]
    fn site_peer_extracts_subgraph() {
        let g = graph();
        let p = SitePeer::from_graph(&g, SiteId(0));
        assert_eq!(p.site(), 0);
        assert_eq!(p.members(), &[0, 1]);
        assert_eq!(p.n_docs(), 2);
        let rank = p
            .compute_local_rank(0.85, &PowerOptions::default())
            .unwrap();
        assert_eq!(rank.len(), 2);
        assert!((rank.scores().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distributed_rounds_match_central_pagerank() {
        // Run the group protocol by hand (3 single-site groups) and compare
        // with PageRank on the site transition matrix.
        let g = graph();
        let m = site_transition(&g);
        let owner_of: Vec<usize> = (0..3).collect();
        let mut groups: Vec<GroupNode> = (0..3)
            .map(|s| GroupNode::new(s, vec![s], &m, 0.85).unwrap())
            .collect();
        for _ in 0..200 {
            let mut total_dangling = 0.0;
            let mut emissions = Vec::new();
            for node in &mut groups {
                let e = node.emit(&owner_of);
                total_dangling += e.dangling_mass;
                emissions.push(e);
            }
            for (src, e) in emissions.into_iter().enumerate() {
                for (dst_group, entries) in e.batches {
                    assert_ne!(dst_group, src);
                    groups[dst_group].absorb(&entries).unwrap();
                }
            }
            for node in &mut groups {
                node.apply_update(total_dangling);
            }
        }
        let distributed: Vec<f64> = (0..3).map(|s| groups[s].rank_of(s)).collect();
        let central = PageRank::new()
            .run(&lmm_linalg::StochasticMatrix::new(m).unwrap())
            .unwrap();
        assert!(vec_ops::l1_diff(&distributed, central.ranking.scores()) < 1e-10);
    }

    #[test]
    fn intra_group_contributions_bypass_network() {
        let g = graph();
        let m = site_transition(&g);
        // One group owning everything: all contributions stay internal.
        let mut node = GroupNode::new(0, vec![0, 1, 2], &m, 0.85).unwrap();
        let emission = node.emit(&[0, 0, 0]);
        assert!(emission.batches.is_empty());
        assert!(emission.residual.is_infinite());
    }

    #[test]
    fn absorb_rejects_foreign_site() {
        let g = graph();
        let m = site_transition(&g);
        let mut node = GroupNode::new(0, vec![0], &m, 0.85).unwrap();
        assert!(matches!(
            node.absorb(&[(2, 0.5)]),
            Err(P2pError::UnknownPeer { peer: 2, .. })
        ));
    }

    #[test]
    fn group_validation() {
        let g = graph();
        let m = site_transition(&g);
        assert!(GroupNode::new(0, vec![], &m, 0.85).is_err());
        assert!(GroupNode::new(0, vec![7], &m, 0.85).is_err());
    }

    #[test]
    fn mass_is_conserved_each_round() {
        let g = graph();
        let m = site_transition(&g);
        let owner_of = vec![0usize, 0, 1];
        let mut groups = vec![
            GroupNode::new(0, vec![0, 1], &m, 0.85).unwrap(),
            GroupNode::new(1, vec![2], &m, 0.85).unwrap(),
        ];
        for _ in 0..5 {
            let mut total_dangling = 0.0;
            let mut emissions = Vec::new();
            for node in &mut groups {
                let e = node.emit(&owner_of);
                total_dangling += e.dangling_mass;
                emissions.push(e);
            }
            for e in emissions {
                for (dst_group, entries) in e.batches {
                    groups[dst_group].absorb(&entries).unwrap();
                }
            }
            for node in &mut groups {
                node.apply_update(total_dangling);
            }
            let total: f64 = groups.iter().flat_map(|n| n.ranks().map(|(_, r)| r)).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }
}
