//! Orchestration of full distributed ranking runs.
//!
//! [`run_distributed`] executes the paper's deployment end to end under one
//! of three architectures and returns the global DocRank together with a
//! per-phase traffic/latency breakdown:
//!
//! * [`Architecture::Flat`] — every site is a peer; the SiteRank power
//!   iteration runs as synchronous rounds of per-edge contribution
//!   messages; local DocRanks are computed in parallel with zero traffic;
//!   each peer ships its local vector for the final composition.
//! * [`Architecture::SuperPeer`] — sites are partitioned across `n_groups`
//!   super-peers; intra-group contributions never touch the network and
//!   inter-group ones are batched, so rounds cost far fewer messages; rank
//!   aggregation happens at the super-peers (the paper's alternative in
//!   Section 3.2).
//! * [`Architecture::Centralized`] — the baseline: every peer uploads its
//!   full edge list and one node computes flat PageRank over the whole
//!   DocGraph.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::error::{P2pError, Result};
use crate::message::{Address, Payload};
use crate::network::{FaultConfig, SimNetwork};
use crate::peer::{GroupNode, SitePeer};
use crate::stats::{PhaseStats, RunStats};
use lmm_graph::docgraph::DocGraph;
use lmm_graph::ids::SiteId;
use lmm_graph::sitegraph::{ranking_site_graph, SiteGraphOptions};
use lmm_linalg::PowerOptions;
use lmm_rank::pagerank::PageRank;
use lmm_rank::Ranking;

/// Deployment topology of the simulated search engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Architecture {
    /// One peer per site; SiteRank runs as a flat distributed iteration.
    Flat,
    /// Sites partitioned over `n_groups` super-peers; aggregation at the
    /// super-peers, batched inter-group traffic.
    SuperPeer {
        /// Number of super-peers.
        n_groups: usize,
    },
    /// Local DocRanks at the peers, but the SiteRank computed once by the
    /// coordinator from uploaded SiteLink rows and shared back — the
    /// paper's "SiteRank could be a shared resource among all peers"
    /// deployment. Minimizes traffic: the SiteGraph crosses the wire once
    /// instead of once per power-iteration round.
    Hybrid,
    /// Ship the whole DocGraph to one node and run flat PageRank there.
    Centralized,
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Architecture::Flat => write!(f, "flat p2p"),
            Architecture::SuperPeer { n_groups } => write!(f, "super-peer x{n_groups}"),
            Architecture::Hybrid => write!(f, "hybrid (central siterank)"),
            Architecture::Centralized => write!(f, "centralized"),
        }
    }
}

/// Configuration of a distributed run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedConfig {
    /// Deployment topology.
    pub architecture: Architecture,
    /// Damping of the SiteRank iteration.
    pub site_damping: f64,
    /// Damping of the per-site local DocRanks.
    pub local_damping: f64,
    /// L1 convergence tolerance of the distributed SiteRank.
    pub tol: f64,
    /// Round budget for the distributed SiteRank.
    pub max_rounds: u32,
    /// SiteGraph derivation options.
    pub site_options: SiteGraphOptions,
    /// Power budget for local computations (local DocRanks; the
    /// centralized baseline's global PageRank).
    pub power: PowerOptions,
    /// Optional message-loss injection.
    pub fault: Option<FaultConfig>,
    /// Worker threads for the parallel local-DocRank phase (`0` = one per
    /// available core).
    pub threads: usize,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        Self {
            architecture: Architecture::Flat,
            site_damping: 0.85,
            local_damping: 0.85,
            tol: 1e-10,
            max_rounds: 10_000,
            site_options: SiteGraphOptions::default(),
            power: PowerOptions::with_tol(1e-10),
            fault: None,
            threads: 0,
        }
    }
}

impl DistributedConfig {
    /// Returns `self` with a different architecture.
    #[must_use]
    pub fn with_architecture(mut self, architecture: Architecture) -> Self {
        self.architecture = architecture;
        self
    }
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The architecture that produced this outcome.
    pub architecture: Architecture,
    /// The global document ranking. For `Flat`/`SuperPeer` this is the
    /// layered SiteRank × DocRank composition; for `Centralized` it is flat
    /// PageRank (the baseline system's semantics).
    pub global: Ranking,
    /// The SiteRank (uniform for the centralized baseline, which never
    /// computes one).
    pub site_rank: Ranking,
    /// Per-phase traffic and timing.
    pub stats: RunStats,
    /// Rounds the distributed SiteRank needed (0 for centralized).
    pub siterank_rounds: u32,
}

/// Runs the configured architecture over the document graph.
///
/// # Errors
/// * [`P2pError::InvalidConfig`] for empty graphs or bad parameters;
/// * [`P2pError::NotConverged`] when the SiteRank round budget is
///   exhausted;
/// * propagated PageRank failures from the compute phases.
pub fn run_distributed(graph: &DocGraph, config: &DistributedConfig) -> Result<DistributedOutcome> {
    if graph.n_docs() == 0 || graph.n_sites() == 0 {
        return Err(P2pError::InvalidConfig {
            reason: "graph has no documents or sites".into(),
        });
    }
    match config.architecture {
        Architecture::Centralized => run_centralized(graph, config),
        Architecture::Hybrid => run_hybrid(graph, config),
        Architecture::Flat => {
            let groups: Vec<Vec<usize>> = (0..graph.n_sites()).map(|s| vec![s]).collect();
            run_layered(graph, config, groups)
        }
        Architecture::SuperPeer { n_groups } => {
            if n_groups == 0 || n_groups > graph.n_sites() {
                return Err(P2pError::InvalidConfig {
                    reason: format!(
                        "{n_groups} super-peers cannot host {} sites",
                        graph.n_sites()
                    ),
                });
            }
            let mut groups = vec![Vec::new(); n_groups];
            for s in 0..graph.n_sites() {
                groups[s % n_groups].push(s);
            }
            run_layered(graph, config, groups)
        }
    }
}

/// The layered protocol (flat and super-peer are the same protocol over
/// different site partitions).
fn run_layered(
    graph: &DocGraph,
    config: &DistributedConfig,
    groups: Vec<Vec<usize>>,
) -> Result<DistributedOutcome> {
    let n_sites = graph.n_sites();
    let n_groups = groups.len();
    let mut owner_of = vec![0usize; n_sites];
    for (g, sites) in groups.iter().enumerate() {
        for &s in sites {
            owner_of[s] = g;
        }
    }
    let mut net = SimNetwork::new(n_groups, config.fault)?;
    let mut stats = RunStats::default();

    // --- Phase 1: SiteGraph derivation. Each peer derives its own
    // SiteLink row from its local pages' outgoing links; no traffic.
    let t0 = Instant::now();
    let site_graph = ranking_site_graph(graph, &config.site_options);
    let site_transition = site_graph.to_stochastic()?.into_matrix();
    let mut nodes: Vec<GroupNode> = groups
        .iter()
        .enumerate()
        .map(|(g, sites)| GroupNode::new(g, sites.clone(), &site_transition, config.site_damping))
        .collect::<Result<_>>()?;
    stats.push(PhaseStats {
        name: "sitegraph",
        traffic: net.take_stats(),
        wall: t0.elapsed(),
        rounds: 0,
    });

    // --- Phase 2: distributed SiteRank (synchronous rounds).
    let t0 = Instant::now();
    let mut rounds = 0u32;
    let mut converged = false;
    let mut last_residual = f64::INFINITY;
    while rounds < config.max_rounds {
        rounds += 1;
        // Peers emit contributions + piggybacked round report.
        let mut total_dangling = 0.0;
        let mut total_residual = 0.0;
        for (g, node) in nodes.iter_mut().enumerate() {
            let emission = node.emit(&owner_of);
            total_dangling += emission.dangling_mass;
            total_residual += emission.residual;
            for (dst_group, entries) in emission.batches {
                net.send(
                    Address::Peer(g),
                    Address::Peer(dst_group),
                    Payload::RankContributionBatch { entries },
                )?;
            }
            net.send(
                Address::Peer(g),
                Address::Coordinator,
                Payload::RoundReport {
                    residual: emission.residual,
                    dangling_mass: emission.dangling_mass,
                },
            )?;
        }
        last_residual = total_residual;
        // Coordinator decides: stop (previous round's residual is already
        // below tolerance) or proceed with the aggregated dangling mass.
        let proceed = total_residual >= config.tol;
        for g in 0..n_groups {
            net.send(
                Address::Coordinator,
                Address::Peer(g),
                Payload::RoundControl {
                    dangling_share: total_dangling,
                    proceed,
                },
            )?;
        }
        if !proceed {
            converged = true;
            // Peers discard the emitted contributions of the final
            // half-round; drain the fabric so nothing dangles.
            for g in 0..n_groups {
                let _ = net.drain(Address::Peer(g))?;
            }
            let _ = net.drain(Address::Coordinator)?;
            break;
        }
        // Deliver contributions and apply the synchronized update.
        let _ = net.drain(Address::Coordinator)?;
        for (g, node) in nodes.iter_mut().enumerate() {
            for msg in net.drain(Address::Peer(g))? {
                if let Payload::RankContributionBatch { entries } = msg.payload {
                    node.absorb(&entries)?;
                }
            }
            node.apply_update(total_dangling);
        }
    }
    if !converged {
        return Err(P2pError::NotConverged {
            rounds,
            residual: last_residual,
        });
    }
    stats.push(PhaseStats {
        name: "siterank rounds",
        traffic: net.take_stats(),
        wall: t0.elapsed(),
        rounds,
    });

    // Collect the site rank vector (conceptually known to each owner).
    let mut site_scores = vec![0.0f64; n_sites];
    for node in &nodes {
        for (s, r) in node.ranks() {
            site_scores[s] = r;
        }
    }
    let site_rank = Ranking::from_weights(site_scores).map_err(P2pError::Rank)?;

    // --- Phase 3: local DocRanks in parallel (no traffic).
    let t0 = Instant::now();
    let local_ranks = parallel_local_ranks(graph, config)?;
    stats.push(PhaseStats {
        name: "local docranks",
        traffic: net.take_stats(),
        wall: t0.elapsed(),
        rounds: 0,
    });

    // --- Phase 4: aggregation. Site peers ship local vectors to their
    // owner (super-peer or coordinator); owners compose their slice and
    // forward it.
    let t0 = Instant::now();
    for (s, &owner) in owner_of.iter().enumerate() {
        // In the flat architecture the site's compute process *is* its
        // protocol node, so handing the vector over is a local move, not
        // network traffic; only uploads to a distinct super-peer count.
        let is_own_node = groups[owner].len() == 1 && groups[owner][0] == s;
        if is_own_node {
            continue;
        }
        net.send(
            Address::Peer(s.min(n_groups - 1)), // the site's compute peer
            Address::Peer(owner),
            Payload::LocalRankVector {
                scores: local_ranks[s].scores().to_vec(),
            },
        )?;
    }
    // Owners weight their slices and forward the composed sub-vector.
    for (g, sites) in groups.iter().enumerate() {
        let slice_len: usize = sites.iter().map(|&s| local_ranks[s].len()).sum();
        net.send(
            Address::Peer(g),
            Address::Coordinator,
            Payload::LocalRankVector {
                scores: vec![0.0; slice_len], // sizes drive accounting
            },
        )?;
        let _ = net.drain(Address::Peer(g))?;
    }
    let _ = net.drain(Address::Coordinator)?;
    // Numerically, compose exactly as lmm-core's pipeline does.
    let mut scores = vec![0.0f64; graph.n_docs()];
    for (s, ranks) in local_ranks.iter().enumerate() {
        let weight = site_rank.score(s);
        for (local, doc) in graph.docs_of_site(SiteId(s)).iter().enumerate() {
            scores[doc.index()] = weight * ranks.score(local);
        }
    }
    let global = Ranking::from_scores(scores).map_err(P2pError::Rank)?;
    stats.push(PhaseStats {
        name: "aggregation",
        traffic: net.take_stats(),
        wall: t0.elapsed(),
        rounds: 0,
    });

    Ok(DistributedOutcome {
        architecture: config.architecture,
        global,
        site_rank,
        stats,
        siterank_rounds: rounds,
    })
}

/// The hybrid deployment: SiteLink rows go up once, the coordinator ranks
/// the (small) SiteGraph centrally and shares the vector; local DocRanks
/// stay at the peers.
fn run_hybrid(graph: &DocGraph, config: &DistributedConfig) -> Result<DistributedOutcome> {
    let n_sites = graph.n_sites();
    let mut net = SimNetwork::new(n_sites, config.fault)?;
    let mut stats = RunStats::default();

    // --- Phase 1: SiteLink rows cross the wire exactly once.
    let t0 = Instant::now();
    let site_graph = ranking_site_graph(graph, &config.site_options);
    for s in 0..n_sites {
        let (cols, vals) = site_graph.weights().row(s);
        net.send(
            Address::Peer(s),
            Address::Coordinator,
            Payload::SiteLinkRow {
                entries: cols.iter().copied().zip(vals.iter().copied()).collect(),
            },
        )?;
    }
    let _ = net.drain(Address::Coordinator)?;
    stats.push(PhaseStats {
        name: "sitelink upload",
        traffic: net.take_stats(),
        wall: t0.elapsed(),
        rounds: 0,
    });

    // --- Phase 2: central SiteRank + broadcast of the shared vector.
    let t0 = Instant::now();
    let mut pr = PageRank::new();
    pr.damping(config.site_damping)
        .tol(config.power.tol)
        .max_iters(config.power.max_iters);
    let site_result = pr.run(&site_graph.to_stochastic()?)?;
    let site_rank = site_result.ranking;
    for s in 0..n_sites {
        net.send(
            Address::Coordinator,
            Address::Peer(s),
            Payload::LocalRankVector {
                scores: site_rank.scores().to_vec(),
            },
        )?;
        let _ = net.drain(Address::Peer(s))?;
    }
    stats.push(PhaseStats {
        name: "central siterank",
        traffic: net.take_stats(),
        wall: t0.elapsed(),
        rounds: site_result.report.iterations as u32,
    });

    // --- Phase 3: local DocRanks in parallel at the peers (no traffic).
    let t0 = Instant::now();
    let local_ranks = parallel_local_ranks(graph, config)?;
    stats.push(PhaseStats {
        name: "local docranks",
        traffic: net.take_stats(),
        wall: t0.elapsed(),
        rounds: 0,
    });

    // --- Phase 4: peers ship their (already weighted) slices.
    let t0 = Instant::now();
    for (s, ranks) in local_ranks.iter().enumerate() {
        net.send(
            Address::Peer(s),
            Address::Coordinator,
            Payload::LocalRankVector {
                scores: ranks.scores().to_vec(),
            },
        )?;
    }
    let _ = net.drain(Address::Coordinator)?;
    let mut scores = vec![0.0f64; graph.n_docs()];
    for (s, ranks) in local_ranks.iter().enumerate() {
        let weight = site_rank.score(s);
        for (local, doc) in graph.docs_of_site(SiteId(s)).iter().enumerate() {
            scores[doc.index()] = weight * ranks.score(local);
        }
    }
    let global = Ranking::from_scores(scores).map_err(P2pError::Rank)?;
    stats.push(PhaseStats {
        name: "aggregation",
        traffic: net.take_stats(),
        wall: t0.elapsed(),
        rounds: 0,
    });

    Ok(DistributedOutcome {
        architecture: Architecture::Hybrid,
        global,
        site_rank,
        stats,
        siterank_rounds: 0,
    })
}

/// The centralized baseline: upload everything, rank flat.
fn run_centralized(graph: &DocGraph, config: &DistributedConfig) -> Result<DistributedOutcome> {
    let n_sites = graph.n_sites();
    let mut net = SimNetwork::new(n_sites, config.fault)?;
    let mut stats = RunStats::default();

    // Upload phase: each site ships every outgoing edge of its pages.
    let t0 = Instant::now();
    let site_of = graph.site_assignments();
    let mut edges_per_site = vec![0usize; n_sites];
    for (src, _, _) in graph.adjacency().iter() {
        edges_per_site[site_of[src].index()] += 1;
    }
    for (s, &n_edges) in edges_per_site.iter().enumerate() {
        net.send(
            Address::Peer(s),
            Address::Coordinator,
            Payload::EdgeList { n_edges },
        )?;
    }
    let _ = net.drain(Address::Coordinator)?;
    stats.push(PhaseStats {
        name: "graph upload",
        traffic: net.take_stats(),
        wall: t0.elapsed(),
        rounds: 0,
    });

    // Central compute phase.
    let t0 = Instant::now();
    let mut pr = PageRank::new();
    pr.damping(config.local_damping)
        .tol(config.power.tol)
        .max_iters(config.power.max_iters);
    let result = pr.run_adjacency(graph.adjacency().clone())?;
    stats.push(PhaseStats {
        name: "central pagerank",
        traffic: net.take_stats(),
        wall: t0.elapsed(),
        rounds: 0,
    });

    Ok(DistributedOutcome {
        architecture: Architecture::Centralized,
        global: result.ranking,
        site_rank: Ranking::uniform(n_sites).map_err(P2pError::Rank)?,
        stats,
        siterank_rounds: 0,
    })
}

/// Computes every site's local DocRank on a worker pool (an atomic work
/// counter feeding `threads` scoped workers), mirroring the real deployment
/// where each site's server ranks its own collection concurrently.
fn parallel_local_ranks(graph: &DocGraph, config: &DistributedConfig) -> Result<Vec<Ranking>> {
    let n_sites = graph.n_sites();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    } else {
        config.threads
    }
    .min(n_sites);

    let peers: Vec<SitePeer> = (0..n_sites)
        .map(|s| SitePeer::from_graph(graph, SiteId(s)))
        .collect();
    let results: Mutex<Vec<Option<Result<Ranking>>>> =
        Mutex::new((0..n_sites).map(|_| None).collect());
    let next_site = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let peers = &peers;
            let results = &results;
            let next_site = &next_site;
            scope.spawn(move || loop {
                let s = next_site.fetch_add(1, Ordering::Relaxed);
                if s >= n_sites {
                    break;
                }
                let rank = peers[s].compute_local_rank(config.local_damping, &config.power);
                results.lock().expect("no poisoned workers")[s] = Some(rank);
            });
        }
    });

    results
        .into_inner()
        .expect("no poisoned workers")
        .into_iter()
        .map(|slot| slot.expect("every site was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmm_core::siterank::{layered_doc_rank, LayeredRankConfig};
    use lmm_graph::generator::CampusWebConfig;
    use lmm_linalg::vec_ops;

    fn small_graph() -> DocGraph {
        let mut cfg = CampusWebConfig::small();
        cfg.total_docs = 500;
        cfg.n_sites = 10;
        cfg.spam_farms.truncate(1);
        cfg.spam_farms[0].host_site = 4;
        cfg.spam_farms[0].n_pages = 60;
        cfg.generate().unwrap()
    }

    #[test]
    fn flat_matches_single_process_pipeline() {
        let g = small_graph();
        let distributed = run_distributed(&g, &DistributedConfig::default()).unwrap();
        let local = layered_doc_rank(&g, &LayeredRankConfig::default()).unwrap();
        assert!(
            vec_ops::l1_diff(distributed.global.scores(), local.global.scores()) < 1e-6,
            "distributed and single-process layered ranks must agree"
        );
        assert!(vec_ops::l1_diff(distributed.site_rank.scores(), local.site_rank.scores()) < 1e-6);
    }

    #[test]
    fn superpeer_matches_flat_result() {
        let g = small_graph();
        let flat = run_distributed(&g, &DistributedConfig::default()).unwrap();
        let sp = run_distributed(
            &g,
            &DistributedConfig::default()
                .with_architecture(Architecture::SuperPeer { n_groups: 3 }),
        )
        .unwrap();
        assert!(vec_ops::l1_diff(flat.global.scores(), sp.global.scores()) < 1e-9);
    }

    #[test]
    fn superpeer_uses_fewer_messages_per_round() {
        let g = small_graph();
        let flat = run_distributed(&g, &DistributedConfig::default()).unwrap();
        let sp = run_distributed(
            &g,
            &DistributedConfig::default()
                .with_architecture(Architecture::SuperPeer { n_groups: 2 }),
        )
        .unwrap();
        let per_round = |o: &DistributedOutcome| {
            let phase = o
                .stats
                .phases
                .iter()
                .find(|p| p.name == "siterank rounds")
                .unwrap();
            phase.traffic.messages as f64 / f64::from(phase.rounds)
        };
        assert!(per_round(&sp) < per_round(&flat));
    }

    #[test]
    fn centralized_ships_the_graph() {
        let g = small_graph();
        let c = run_distributed(
            &g,
            &DistributedConfig::default().with_architecture(Architecture::Centralized),
        )
        .unwrap();
        let upload = &c.stats.phases[0];
        assert_eq!(upload.name, "graph upload");
        // Upload bytes scale with the edge count (16 bytes per edge + headers).
        assert!(upload.traffic.bytes as usize >= g.n_links() * 16);
        // The hybrid layered deployment moves far less data: SiteLink rows
        // once plus rank vectors, instead of the whole DocGraph.
        let hybrid = run_distributed(
            &g,
            &DistributedConfig::default().with_architecture(Architecture::Hybrid),
        )
        .unwrap();
        assert!(hybrid.stats.total().bytes < upload.traffic.bytes);
    }

    #[test]
    fn hybrid_matches_flat_result() {
        let g = small_graph();
        let flat = run_distributed(&g, &DistributedConfig::default()).unwrap();
        let hybrid = run_distributed(
            &g,
            &DistributedConfig::default().with_architecture(Architecture::Hybrid),
        )
        .unwrap();
        assert!(vec_ops::l1_diff(flat.global.scores(), hybrid.global.scores()) < 1e-6);
        assert!(vec_ops::l1_diff(flat.site_rank.scores(), hybrid.site_rank.scores()) < 1e-6);
    }

    #[test]
    fn message_loss_preserves_result_and_inflates_traffic() {
        let g = small_graph();
        let clean = run_distributed(&g, &DistributedConfig::default()).unwrap();
        let cfg = DistributedConfig {
            fault: Some(FaultConfig {
                drop_prob: 0.2,
                seed: 7,
            }),
            ..DistributedConfig::default()
        };
        let lossy = run_distributed(&g, &cfg).unwrap();
        assert!(vec_ops::l1_diff(clean.global.scores(), lossy.global.scores()) < 1e-9);
        assert!(lossy.stats.total().retransmissions > 0);
        assert!(lossy.stats.total().messages > clean.stats.total().messages);
    }

    #[test]
    fn round_budget_enforced() {
        let g = small_graph();
        let cfg = DistributedConfig {
            max_rounds: 2,
            ..DistributedConfig::default()
        };
        assert!(matches!(
            run_distributed(&g, &cfg),
            Err(P2pError::NotConverged { rounds: 2, .. })
        ));
    }

    #[test]
    fn config_validation() {
        let g = small_graph();
        let cfg =
            DistributedConfig::default().with_architecture(Architecture::SuperPeer { n_groups: 0 });
        assert!(run_distributed(&g, &cfg).is_err());
        let cfg = DistributedConfig::default()
            .with_architecture(Architecture::SuperPeer { n_groups: 99 });
        assert!(run_distributed(&g, &cfg).is_err());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let g = small_graph();
        let cfg = DistributedConfig {
            threads: 1,
            ..DistributedConfig::default()
        };
        let serial = run_distributed(&g, &cfg).unwrap();
        let parallel = run_distributed(&g, &DistributedConfig::default()).unwrap();
        assert!(vec_ops::l1_diff(serial.global.scores(), parallel.global.scores()) < 1e-12);
    }

    #[test]
    fn architecture_display() {
        assert_eq!(Architecture::Flat.to_string(), "flat p2p");
        assert_eq!(
            Architecture::SuperPeer { n_groups: 4 }.to_string(),
            "super-peer x4"
        );
        assert_eq!(Architecture::Centralized.to_string(), "centralized");
    }
}
