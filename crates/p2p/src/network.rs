//! The simulated message fabric: delivery queues, traffic accounting and
//! failure injection.
//!
//! Messages are enqueued with [`SimNetwork::send`] and drained per
//! destination with [`SimNetwork::drain`]. With a [`FaultConfig`], each
//! transmission attempt is dropped with probability `drop_prob`; the sender
//! retransmits until delivery (the simulator's stand-in for an
//! ack/timeout/retransmit transport), so protocol *semantics* are
//! unchanged while *traffic* inflates — exactly what the failure-injection
//! experiment measures.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::error::{P2pError, Result};
use crate::message::{Address, Message, Payload};
use crate::stats::TrafficStats;

/// Message-loss injection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that one transmission attempt is lost (in `[0, 1)`).
    pub drop_prob: f64,
    /// Seed of the loss process (deterministic runs).
    pub seed: u64,
}

impl FaultConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`P2pError::InvalidConfig`] when `drop_prob` is not in
    /// `[0, 1)` (a probability of 1 would retransmit forever).
    pub fn validate(&self) -> Result<()> {
        if !(0.0..1.0).contains(&self.drop_prob) {
            return Err(P2pError::InvalidConfig {
                reason: format!("drop_prob {} must lie in [0, 1)", self.drop_prob),
            });
        }
        Ok(())
    }
}

/// The simulated network: one inbox per peer plus the coordinator's inbox.
#[derive(Debug)]
pub struct SimNetwork {
    peer_inboxes: Vec<VecDeque<Message>>,
    coordinator_inbox: VecDeque<Message>,
    stats: TrafficStats,
    fault: Option<(FaultConfig, StdRng)>,
}

impl SimNetwork {
    /// Creates a fabric for `n_peers` peers (plus the coordinator).
    ///
    /// # Errors
    /// Returns [`P2pError::InvalidConfig`] for zero peers or an invalid
    /// fault configuration.
    pub fn new(n_peers: usize, fault: Option<FaultConfig>) -> Result<Self> {
        if n_peers == 0 {
            return Err(P2pError::InvalidConfig {
                reason: "network needs at least one peer".into(),
            });
        }
        if let Some(f) = &fault {
            f.validate()?;
        }
        Ok(Self {
            peer_inboxes: (0..n_peers).map(|_| VecDeque::new()).collect(),
            coordinator_inbox: VecDeque::new(),
            stats: TrafficStats::default(),
            fault: fault.map(|f| (f, StdRng::seed_from_u64(f.seed))),
        })
    }

    /// Number of peers.
    #[must_use]
    pub fn n_peers(&self) -> usize {
        self.peer_inboxes.len()
    }

    /// Sends a message, retransmitting through injected losses until it is
    /// delivered. Every attempt (including lost ones) is counted.
    ///
    /// # Errors
    /// Returns [`P2pError::UnknownPeer`] for an out-of-range recipient.
    pub fn send(&mut self, from: Address, to: Address, payload: Payload) -> Result<()> {
        let message = Message::new(from, to, payload);
        let size = message.wire_size();
        // Transmission attempts: with faults, retry until the coin says
        // "delivered"; each attempt consumes bandwidth.
        let mut attempts = 1u64;
        if let Some((cfg, rng)) = &mut self.fault {
            while rng.random::<f64>() < cfg.drop_prob {
                attempts += 1;
            }
        }
        self.stats.messages += attempts;
        self.stats.bytes += attempts * size;
        if attempts > 1 {
            self.stats.retransmissions += attempts - 1;
        }
        match to {
            Address::Coordinator => self.coordinator_inbox.push_back(message),
            Address::Peer(p) => {
                let n = self.peer_inboxes.len();
                self.peer_inboxes
                    .get_mut(p)
                    .ok_or(P2pError::UnknownPeer {
                        peer: p,
                        n_peers: n,
                    })?
                    .push_back(message);
            }
        }
        Ok(())
    }

    /// Drains the inbox of a destination.
    ///
    /// # Errors
    /// Returns [`P2pError::UnknownPeer`] for an out-of-range peer.
    pub fn drain(&mut self, who: Address) -> Result<Vec<Message>> {
        let inbox = match who {
            Address::Coordinator => &mut self.coordinator_inbox,
            Address::Peer(p) => {
                let n = self.peer_inboxes.len();
                self.peer_inboxes.get_mut(p).ok_or(P2pError::UnknownPeer {
                    peer: p,
                    n_peers: n,
                })?
            }
        };
        Ok(inbox.drain(..).collect())
    }

    /// Snapshot of the traffic counters.
    #[must_use]
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Resets the traffic counters (used between protocol phases) and
    /// returns the counts accumulated so far.
    pub fn take_stats(&mut self) -> TrafficStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contribution(v: f64) -> Payload {
        Payload::RankContribution {
            dest_site: 0,
            value: v,
        }
    }

    #[test]
    fn messages_are_delivered_in_order() {
        let mut net = SimNetwork::new(2, None).unwrap();
        net.send(Address::Peer(0), Address::Peer(1), contribution(0.1))
            .unwrap();
        net.send(Address::Peer(0), Address::Peer(1), contribution(0.2))
            .unwrap();
        let inbox = net.drain(Address::Peer(1)).unwrap();
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox[0].payload, contribution(0.1));
        assert_eq!(inbox[1].payload, contribution(0.2));
        assert!(net.drain(Address::Peer(1)).unwrap().is_empty());
    }

    #[test]
    fn coordinator_has_own_inbox() {
        let mut net = SimNetwork::new(1, None).unwrap();
        net.send(
            Address::Peer(0),
            Address::Coordinator,
            Payload::RoundReport {
                residual: 0.0,
                dangling_mass: 0.0,
            },
        )
        .unwrap();
        assert_eq!(net.drain(Address::Coordinator).unwrap().len(), 1);
        assert!(net.drain(Address::Peer(0)).unwrap().is_empty());
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let mut net = SimNetwork::new(2, None).unwrap();
        net.send(Address::Peer(0), Address::Peer(1), contribution(0.1))
            .unwrap();
        let stats = net.stats();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.bytes, contribution(0.1).wire_size());
        assert_eq!(stats.retransmissions, 0);
    }

    #[test]
    fn faults_inflate_traffic_but_deliver_everything() {
        let fault = FaultConfig {
            drop_prob: 0.5,
            seed: 11,
        };
        let mut net = SimNetwork::new(2, Some(fault)).unwrap();
        for _ in 0..200 {
            net.send(Address::Peer(0), Address::Peer(1), contribution(0.1))
                .unwrap();
        }
        // All 200 messages arrive despite drops...
        assert_eq!(net.drain(Address::Peer(1)).unwrap().len(), 200);
        // ...but traffic shows retransmissions (expected ~200 extra at 50%).
        let stats = net.stats();
        assert!(stats.retransmissions > 100, "{stats:?}");
        assert_eq!(stats.messages, 200 + stats.retransmissions);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let run = |seed| {
            let mut net = SimNetwork::new(
                2,
                Some(FaultConfig {
                    drop_prob: 0.3,
                    seed,
                }),
            )
            .unwrap();
            for _ in 0..50 {
                net.send(Address::Peer(0), Address::Peer(1), contribution(0.1))
                    .unwrap();
            }
            net.stats().messages
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn validation() {
        assert!(SimNetwork::new(0, None).is_err());
        assert!(FaultConfig {
            drop_prob: 1.0,
            seed: 0
        }
        .validate()
        .is_err());
        let mut net = SimNetwork::new(1, None).unwrap();
        assert!(matches!(
            net.send(Address::Peer(0), Address::Peer(9), contribution(0.1)),
            Err(P2pError::UnknownPeer { peer: 9, .. })
        ));
        assert!(net.drain(Address::Peer(9)).is_err());
    }

    #[test]
    fn take_stats_resets() {
        let mut net = SimNetwork::new(2, None).unwrap();
        net.send(Address::Peer(0), Address::Peer(1), contribution(0.1))
            .unwrap();
        let taken = net.take_stats();
        assert_eq!(taken.messages, 1);
        assert_eq!(net.stats().messages, 0);
    }
}
