//! Traffic and timing accounting for distributed runs.

use std::time::Duration;

/// Raw transport counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Transmission attempts (including retransmissions).
    pub messages: u64,
    /// Bytes across all attempts.
    pub bytes: u64,
    /// Attempts beyond the first per logical message (failure injection).
    pub retransmissions: u64,
}

impl TrafficStats {
    /// Component-wise sum.
    #[must_use]
    pub fn plus(self, other: TrafficStats) -> TrafficStats {
        TrafficStats {
            messages: self.messages + other.messages,
            bytes: self.bytes + other.bytes,
            retransmissions: self.retransmissions + other.retransmissions,
        }
    }
}

impl std::fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} msgs, {} bytes ({} retx)",
            self.messages, self.bytes, self.retransmissions
        )
    }
}

/// One protocol phase: what it cost on the wire and on the clock.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseStats {
    /// Phase label ("siterank rounds", "local docranks", ...).
    pub name: &'static str,
    /// Transport counters for the phase.
    pub traffic: TrafficStats,
    /// Wall-clock duration of the phase.
    pub wall: Duration,
    /// Synchronous rounds executed (0 for compute-only phases).
    pub rounds: u32,
}

impl std::fmt::Display for PhaseStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<18} {:>10} msgs {:>14} bytes {:>6} rounds {:>10.3?}",
            self.name, self.traffic.messages, self.traffic.bytes, self.rounds, self.wall
        )
    }
}

/// Accounting for a full distributed run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunStats {
    /// Per-phase breakdown in execution order.
    pub phases: Vec<PhaseStats>,
}

impl RunStats {
    /// Appends a phase.
    pub fn push(&mut self, phase: PhaseStats) {
        self.phases.push(phase);
    }

    /// Aggregate traffic across phases.
    #[must_use]
    pub fn total(&self) -> TrafficStats {
        self.phases
            .iter()
            .fold(TrafficStats::default(), |acc, p| acc.plus(p.traffic))
    }

    /// Total wall time across phases.
    #[must_use]
    pub fn total_wall(&self) -> Duration {
        self.phases.iter().map(|p| p.wall).sum()
    }

    /// Total synchronous rounds.
    #[must_use]
    pub fn total_rounds(&self) -> u32 {
        self.phases.iter().map(|p| p.rounds).sum()
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for p in &self.phases {
            writeln!(f, "{p}")?;
        }
        write!(f, "total: {} in {:.3?}", self.total(), self.total_wall())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_addition() {
        let a = TrafficStats {
            messages: 1,
            bytes: 10,
            retransmissions: 0,
        };
        let b = TrafficStats {
            messages: 2,
            bytes: 20,
            retransmissions: 1,
        };
        let c = a.plus(b);
        assert_eq!(c.messages, 3);
        assert_eq!(c.bytes, 30);
        assert_eq!(c.retransmissions, 1);
    }

    #[test]
    fn run_stats_aggregate() {
        let mut run = RunStats::default();
        run.push(PhaseStats {
            name: "a",
            traffic: TrafficStats {
                messages: 5,
                bytes: 100,
                retransmissions: 0,
            },
            wall: Duration::from_millis(10),
            rounds: 3,
        });
        run.push(PhaseStats {
            name: "b",
            traffic: TrafficStats {
                messages: 7,
                bytes: 50,
                retransmissions: 2,
            },
            wall: Duration::from_millis(5),
            rounds: 0,
        });
        assert_eq!(run.total().messages, 12);
        assert_eq!(run.total().bytes, 150);
        assert_eq!(run.total_wall(), Duration::from_millis(15));
        assert_eq!(run.total_rounds(), 3);
        let display = run.to_string();
        assert!(display.contains("total"));
        assert!(display.contains("12 msgs"));
    }
}
