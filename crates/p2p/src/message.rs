//! Wire messages exchanged by peers, with size accounting.
//!
//! Sizes approximate a compact binary encoding: 8 bytes per `f64` / index,
//! plus a fixed per-message header. The simulator never serializes for
//! real — only the byte counts matter for the traffic tables.

/// Per-message header overhead (source, destination, type tag, length).
pub const HEADER_BYTES: u64 = 24;

/// A peer or coordinator address. The coordinator is a distinguished
/// address outside the peer index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Address {
    /// Peer owning site `i` (or super-peer `i`, depending on context).
    Peer(usize),
    /// The coordinating node.
    Coordinator,
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Address::Peer(i) => write!(f, "peer{i}"),
            Address::Coordinator => write!(f, "coordinator"),
        }
    }
}

/// Message payloads of the distributed ranking protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// One SiteRank power-iteration contribution: `value` flows from the
    /// sender's site toward `dest_site` (flat architecture: one edge per
    /// message).
    RankContribution {
        /// Destination site of the contribution.
        dest_site: usize,
        /// Contribution value `d · rank_I · w_IJ`.
        value: f64,
    },
    /// Batched contributions between super-peers: many `(site, value)`
    /// pairs in one message.
    RankContributionBatch {
        /// `(destination site, value)` pairs.
        entries: Vec<(usize, f64)>,
    },
    /// Per-round status from a peer to the coordinator: the L1 residual of
    /// its slice and the dangling mass it holds.
    RoundReport {
        /// Sum of `|new − old|` over the peer's site entries.
        residual: f64,
        /// Rank mass parked on sites without outgoing SiteLinks.
        dangling_mass: f64,
    },
    /// Coordinator's broadcast starting the next round (or stopping).
    RoundControl {
        /// Dangling mass share each site must fold into its update.
        dangling_share: f64,
        /// `false` = converged, stop iterating.
        proceed: bool,
    },
    /// A peer's final local DocRank vector (aggregation phase).
    LocalRankVector {
        /// Local PageRank scores, one per member document.
        scores: Vec<f64>,
    },
    /// A site's full edge list (centralized baseline upload).
    EdgeList {
        /// Number of `(from, to)` document pairs shipped.
        n_edges: usize,
    },
    /// A site's SiteLink out-row (centralized SiteRank variant).
    SiteLinkRow {
        /// `(destination site, link count)` pairs.
        entries: Vec<(usize, f64)>,
    },
}

impl Payload {
    /// Approximate wire size in bytes (header included).
    #[must_use]
    pub fn wire_size(&self) -> u64 {
        let body = match self {
            Payload::RankContribution { .. } => 16,
            Payload::RankContributionBatch { entries } => 16 * entries.len() as u64,
            Payload::RoundReport { .. } => 16,
            Payload::RoundControl { .. } => 9,
            Payload::LocalRankVector { scores } => 8 * scores.len() as u64,
            Payload::EdgeList { n_edges } => 16 * *n_edges as u64,
            Payload::SiteLinkRow { entries } => 16 * entries.len() as u64,
        };
        HEADER_BYTES + body
    }
}

/// An addressed message.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sender.
    pub from: Address,
    /// Recipient.
    pub to: Address,
    /// Payload.
    pub payload: Payload,
}

impl Message {
    /// Creates a message.
    #[must_use]
    pub fn new(from: Address, to: Address, payload: Payload) -> Self {
        Self { from, to, payload }
    }

    /// Wire size including header.
    #[must_use]
    pub fn wire_size(&self) -> u64 {
        self.payload.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_with_content() {
        let single = Payload::RankContribution {
            dest_site: 3,
            value: 0.5,
        };
        let batch = Payload::RankContributionBatch {
            entries: vec![(1, 0.1), (2, 0.2), (3, 0.3)],
        };
        assert_eq!(single.wire_size(), HEADER_BYTES + 16);
        assert_eq!(batch.wire_size(), HEADER_BYTES + 48);
        let vector = Payload::LocalRankVector {
            scores: vec![0.0; 100],
        };
        assert_eq!(vector.wire_size(), HEADER_BYTES + 800);
        let edges = Payload::EdgeList { n_edges: 10 };
        assert_eq!(edges.wire_size(), HEADER_BYTES + 160);
    }

    #[test]
    fn batching_amortizes_headers() {
        // 3 single messages cost more than 1 batch of 3 — the super-peer
        // architecture's advantage.
        let singles: u64 = (0..3)
            .map(|i| {
                Payload::RankContribution {
                    dest_site: i,
                    value: 0.1,
                }
                .wire_size()
            })
            .sum();
        let batch = Payload::RankContributionBatch {
            entries: vec![(0, 0.1), (1, 0.1), (2, 0.1)],
        }
        .wire_size();
        assert!(batch < singles);
    }

    #[test]
    fn address_display() {
        assert_eq!(Address::Peer(4).to_string(), "peer4");
        assert_eq!(Address::Coordinator.to_string(), "coordinator");
    }

    #[test]
    fn message_construction() {
        let m = Message::new(
            Address::Peer(0),
            Address::Coordinator,
            Payload::RoundReport {
                residual: 0.1,
                dangling_mass: 0.0,
            },
        );
        assert_eq!(m.wire_size(), HEADER_BYTES + 16);
    }
}
