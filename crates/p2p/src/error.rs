//! Error type for the distributed-ranking simulator.

use std::error::Error as StdError;
use std::fmt;

use lmm_core::LmmError;
use lmm_linalg::LinalgError;
use lmm_rank::RankError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, P2pError>;

/// Errors produced by the distributed simulation.
#[derive(Debug)]
pub enum P2pError {
    /// The configuration is invalid (zero peers, bad fault probability...).
    InvalidConfig {
        /// Human-readable cause.
        reason: String,
    },
    /// The distributed SiteRank failed to converge within the round budget.
    NotConverged {
        /// Rounds executed.
        rounds: u32,
        /// Residual at the last round.
        residual: f64,
    },
    /// A message referenced an unknown peer.
    UnknownPeer {
        /// The offending peer index.
        peer: usize,
        /// Number of peers in the network.
        n_peers: usize,
    },
    /// Underlying layered-model failure.
    Lmm(LmmError),
    /// Underlying ranking failure.
    Rank(RankError),
    /// Underlying linear-algebra failure.
    Linalg(LinalgError),
}

impl fmt::Display for P2pError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            P2pError::InvalidConfig { reason } => {
                write!(f, "invalid distributed configuration: {reason}")
            }
            P2pError::NotConverged { rounds, residual } => write!(
                f,
                "distributed siterank did not converge after {rounds} rounds (residual {residual:e})"
            ),
            P2pError::UnknownPeer { peer, n_peers } => {
                write!(f, "unknown peer {peer} (network has {n_peers} peers)")
            }
            P2pError::Lmm(e) => write!(f, "layered model error: {e}"),
            P2pError::Rank(e) => write!(f, "ranking error: {e}"),
            P2pError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl StdError for P2pError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            P2pError::Lmm(e) => Some(e),
            P2pError::Rank(e) => Some(e),
            P2pError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LmmError> for P2pError {
    fn from(e: LmmError) -> Self {
        P2pError::Lmm(e)
    }
}

impl From<RankError> for P2pError {
    fn from(e: RankError) -> Self {
        P2pError::Rank(e)
    }
}

impl From<LinalgError> for P2pError {
    fn from(e: LinalgError) -> Self {
        P2pError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(P2pError::NotConverged {
            rounds: 7,
            residual: 0.5
        }
        .to_string()
        .contains('7'));
        assert!(P2pError::UnknownPeer {
            peer: 3,
            n_peers: 2
        }
        .to_string()
        .contains('3'));
    }

    #[test]
    fn sources() {
        assert!(P2pError::from(RankError::Empty).source().is_some());
        assert!(P2pError::InvalidConfig { reason: "x".into() }
            .source()
            .is_none());
    }

    #[test]
    fn bounds() {
        fn assert_bounds<E: StdError + Send + Sync + 'static>() {}
        assert_bounds::<P2pError>();
    }
}
