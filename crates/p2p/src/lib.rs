//! Peer-to-peer simulation of distributed LMM ranking.
//!
//! The paper's motivation is Web search engines with a **peer-to-peer
//! architecture** (Section 3.2): each Web site is a peer that computes its
//! own local DocRank; the SiteRank is computed over the (much smaller)
//! SiteGraph, either by a coordinator or cooperatively; the final ranking
//! is the O(N) composition of the two. This crate simulates that deployment
//! faithfully enough to *measure* it:
//!
//! * [`peer::SitePeer`] — a peer owning one site: its intra-site subgraph,
//!   its outgoing SiteLink row, and its slice of the rank vectors;
//! * [`network::SimNetwork`] — a message-passing fabric with per-message
//!   byte accounting and optional loss + retransmission (failure
//!   injection);
//! * [`runner`] — three architectures over the same graph:
//!   [`Architecture::Flat`] (every site a peer, round-synchronous
//!   distributed SiteRank), [`Architecture::SuperPeer`] (rank aggregation
//!   at super-peers, batched inter-group traffic), and
//!   [`Architecture::Centralized`] (the baseline that ships the whole
//!   DocGraph to one node);
//! * [`stats`] — per-phase traffic and wall-clock accounting that the
//!   experiment harness (E7) turns into tables.
//!
//! The distributed result is numerically identical (up to the convergence
//! tolerance) to the single-process layered pipeline in
//! [`lmm_core::siterank`] — that equivalence is asserted in the integration
//! tests, with and without message loss.
//!
//! # Example
//!
//! ```
//! use lmm_graph::generator::CampusWebConfig;
//! use lmm_p2p::runner::{run_distributed, Architecture, DistributedConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cfg = CampusWebConfig::small();
//! cfg.total_docs = 600;
//! cfg.n_sites = 12;
//! cfg.spam_farms.clear();
//! let graph = cfg.generate()?;
//! let outcome = run_distributed(&graph, &DistributedConfig::default())?;
//! assert!(outcome.stats.total().messages > 0);
//! assert_eq!(outcome.global.len(), graph.n_docs());
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod message;
pub mod network;
pub mod peer;
pub mod runner;
pub mod stats;

pub use error::{P2pError, Result};
pub use network::{FaultConfig, SimNetwork};
pub use peer::SitePeer;
pub use runner::{run_distributed, Architecture, DistributedConfig, DistributedOutcome};
pub use stats::{PhaseStats, RunStats, TrafficStats};
