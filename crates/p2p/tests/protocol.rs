//! Protocol-level tests of the distributed simulator: grouping topologies,
//! determinism under faults, and accounting consistency.

use lmm_graph::generator::{random_web, CampusWebConfig};
use lmm_linalg::vec_ops;
use lmm_p2p::runner::{run_distributed, Architecture, DistributedConfig};
use lmm_p2p::FaultConfig;

fn graph() -> lmm_graph::DocGraph {
    let mut cfg = CampusWebConfig::small();
    cfg.total_docs = 600;
    cfg.n_sites = 15;
    cfg.spam_farms.truncate(1);
    cfg.spam_farms[0].host_site = 6;
    cfg.spam_farms[0].n_pages = 60;
    cfg.generate().expect("campus web")
}

#[test]
fn all_group_counts_agree() {
    // The group partition is a pure implementation detail: every group
    // count from 1 (one super-peer owns everything) to n_sites (flat) must
    // produce the same ranking.
    let g = graph();
    let reference = run_distributed(&g, &DistributedConfig::default()).expect("flat");
    for n_groups in [1, 2, 3, 7, 15] {
        let outcome = run_distributed(
            &g,
            &DistributedConfig::default().with_architecture(Architecture::SuperPeer { n_groups }),
        )
        .expect("superpeer run");
        assert!(
            vec_ops::l1_diff(outcome.global.scores(), reference.global.scores()) < 1e-9,
            "{n_groups} groups diverged"
        );
    }
}

#[test]
fn single_group_superpeer_has_zero_round_traffic() {
    // With one super-peer, every SiteRank contribution is intra-group: the
    // rounds exchange only coordinator control traffic.
    let g = graph();
    let outcome = run_distributed(
        &g,
        &DistributedConfig::default().with_architecture(Architecture::SuperPeer { n_groups: 1 }),
    )
    .expect("single group");
    let rounds_phase = outcome
        .stats
        .phases
        .iter()
        .find(|p| p.name == "siterank rounds")
        .expect("phase exists");
    // 2 messages per round: one report up, one control down.
    assert_eq!(
        rounds_phase.traffic.messages,
        u64::from(rounds_phase.rounds) * 2
    );
}

#[test]
fn fault_seeds_are_deterministic_and_distinct() {
    let g = graph();
    let run = |seed: u64| {
        let cfg = DistributedConfig {
            fault: Some(FaultConfig {
                drop_prob: 0.3,
                seed,
            }),
            ..DistributedConfig::default()
        };
        run_distributed(&g, &cfg).expect("lossy run")
    };
    let a1 = run(1);
    let a2 = run(1);
    let b = run(2);
    assert_eq!(a1.stats.total().messages, a2.stats.total().messages);
    // Different loss patterns, identical rankings.
    assert_ne!(a1.stats.total().messages, b.stats.total().messages);
    assert!(vec_ops::l1_diff(a1.global.scores(), b.global.scores()) < 1e-9);
}

#[test]
fn works_on_unstructured_random_webs() {
    // The protocol must not depend on the campus generator's structure.
    let g = random_web(400, 12, 5, 77).expect("random web");
    let outcome = run_distributed(&g, &DistributedConfig::default()).expect("flat");
    assert_eq!(outcome.global.len(), g.n_docs());
    let total: f64 = outcome.global.scores().iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn aggregation_traffic_scales_with_documents() {
    let small = random_web(200, 10, 4, 3).expect("small web");
    let large = random_web(800, 10, 4, 3).expect("large web");
    let bytes_of = |g: &lmm_graph::DocGraph| {
        let outcome = run_distributed(g, &DistributedConfig::default()).expect("run");
        outcome
            .stats
            .phases
            .iter()
            .find(|p| p.name == "aggregation")
            .expect("phase")
            .traffic
            .bytes
    };
    let (b_small, b_large) = (bytes_of(&small), bytes_of(&large));
    // 4x the documents => roughly 4x the aggregation bytes (headers aside).
    let ratio = b_large as f64 / b_small as f64;
    assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
}
