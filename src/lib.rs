//! # Layered Markov Model web ranking — facade crate
//!
//! A full reproduction of *Wu & Aberer, "Using a Layered Markov Model for
//! Distributed Web Ranking Computation" (ICDCS 2005)* as a Rust workspace.
//! This crate re-exports every workspace member under one roof so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`engine`] — **the unified API**: `RankEngine::builder()`, pluggable
//!   [`Ranker`](lmm_engine::Ranker) backends for every approach and
//!   deployment, and a query-serving layer (`top_k`, `top_k_for_site`,
//!   `score`, `compare`);
//! * [`linalg`] — sparse/dense matrices, power method, primitivity analysis;
//! * [`rank`] — PageRank, gatekeeper (minimal irreducibility), HITS,
//!   BlockRank, and rank-comparison metrics;
//! * [`graph`] — DocGraph/SiteGraph web-graph substrate and the synthetic
//!   campus-web generator;
//! * [`core`] — the Layered Markov Model: Approaches 1–4, the Partition
//!   Theorem, and the SiteRank × DocRank pipeline;
//! * [`p2p`] — the distributed (peer-to-peer) computation simulator;
//! * [`serve`] — the sharded concurrent serving tier: site-range shards,
//!   epoch-consistent queries, and snapshot hot-swap over live deltas;
//! * [`cluster`] — the same serving protocol across processes over TCP:
//!   shard nodes, a controller with heartbeat eviction and failover, and
//!   a client whose answers are bitwise identical to the in-process tier.
//!
//! # Quickstart
//!
//! Rank a synthetic campus web with the Layered Method through the unified
//! engine, serve queries from the cache, and confirm the Partition Theorem
//! (Approach 2 ≡ Approach 4) through the same API:
//!
//! ```
//! use lmm::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cfg = CampusWebConfig::small();
//! cfg.total_docs = 400;
//! cfg.n_sites = 8;
//! cfg.spam_farms.clear();
//! let graph = cfg.generate()?;
//!
//! // Approach 4 — the Layered Method — through the unified builder.
//! let mut engine = RankEngine::builder()
//!     .backend(BackendSpec::Layered { site_layer: SiteLayerMethod::Stationary })
//!     .damping(0.85)
//!     .build()?;
//! engine.rank(&graph)?;
//! let top = engine.top_k(5)?; // served from the cache
//! assert_eq!(top.len(), 5);
//!
//! // Approach 2 (centralized stationary chain) agrees: Theorem 2.
//! let mut central = RankEngine::builder()
//!     .backend(BackendSpec::CentralizedStationary)
//!     .damping(0.85)
//!     .build()?;
//! central.rank(&graph)?;
//! assert!(engine.compare(central.outcome()?, 10)?.linf < 1e-8);
//! # Ok(())
//! # }
//! ```

pub use lmm_cluster as cluster;
pub use lmm_core as core;
pub use lmm_engine as engine;
pub use lmm_graph as graph;
pub use lmm_linalg as linalg;
pub use lmm_p2p as p2p;
pub use lmm_rank as rank;
pub use lmm_serve as serve;

/// Commonly used items, importable with `use lmm::prelude::*`.
pub mod prelude {
    pub use lmm_cluster::{
        ClientConfig, ClusterClient, ClusterController, ClusterError, ControllerConfig, NodeConfig,
        ShardNode,
    };
    pub use lmm_core::{
        approaches::RankApproach, model::LayeredMarkovModel, siterank::LayeredRankConfig,
        siterank::SiteLayerMethod,
    };
    pub use lmm_engine::{
        BackendSpec, EngineConfig, EngineError, MemorySink, RankEngine, RankOutcome, RankSnapshot,
        Ranker, RunTelemetry, Staleness,
    };
    pub use lmm_graph::{
        delta::{AppliedDelta, GraphDelta},
        docgraph::{DocGraph, DocGraphBuilder},
        generator::CampusWebConfig,
        remap::IdRemap,
        sharding::ShardMap,
        sitegraph::{SiteGraph, SiteGraphOptions},
        DocId, SiteId,
    };
    pub use lmm_linalg::{
        CooMatrix, CsrMatrix, DenseMatrix, LinalgError, PowerOptions, StochasticMatrix,
    };
    pub use lmm_p2p::runner::Architecture;
    pub use lmm_rank::{
        pagerank::{PageRank, PageRankConfig},
        ranking::Ranking,
    };
    pub use lmm_serve::{ServeConfig, ServeError, ShardQuery, ShardedServer};
}

/// Thin deprecated shims over the pre-engine ad-hoc entry points.
///
/// Each function forwards to the exact computation the unified
/// [`RankEngine`](lmm_engine::RankEngine) backends wrap; new code should go
/// through the engine (and, for query traffic, the `lmm-serve` tier),
/// which adds validation, caching, serving, and telemetry on top of the
/// same numerics.
///
/// **Deprecation status (PR 4):** nothing in this repository calls these
/// shims anymore — every example, experiment binary, and integration test
/// goes through the engine/serve API (the baseline tests deliberately call
/// `lmm_core::siterank` directly, since they *test* those numerics rather
/// than wrap them). The module stays for one more release purely as a
/// migration aid for external callers of the 0.1 entry points; remove it
/// once downstreams have moved.
pub mod compat {
    use lmm_core::siterank::{LayeredDocRank, LayeredRankConfig};
    use lmm_graph::docgraph::DocGraph;
    use lmm_linalg::PowerOptions;
    use lmm_p2p::runner::{DistributedConfig, DistributedOutcome};
    use lmm_rank::pagerank::PageRankResult;

    /// Pre-engine entry point for the layered pipeline.
    ///
    /// # Errors
    /// See [`lmm_core::siterank::layered_doc_rank`].
    #[deprecated(
        since = "0.2.0",
        note = "use lmm::engine::RankEngine with BackendSpec::Layered"
    )]
    pub fn layered_doc_rank(
        graph: &DocGraph,
        config: &LayeredRankConfig,
    ) -> lmm_core::Result<LayeredDocRank> {
        lmm_core::siterank::layered_doc_rank(graph, config)
    }

    /// Pre-engine entry point for the flat baseline.
    ///
    /// # Errors
    /// See [`lmm_core::siterank::flat_pagerank`].
    #[deprecated(
        since = "0.2.0",
        note = "use lmm::engine::RankEngine with BackendSpec::FlatPageRank"
    )]
    pub fn flat_pagerank(
        graph: &DocGraph,
        damping: f64,
        power: &PowerOptions,
    ) -> lmm_core::Result<PageRankResult> {
        // Stay serial (threads = 1): this shim predates the engine's
        // threads knob, and legacy callers must not silently start a
        // process-wide worker pool.
        lmm_core::siterank::flat_pagerank(graph, damping, power, 1)
    }

    /// Pre-engine entry point for distributed runs.
    ///
    /// # Errors
    /// See [`lmm_p2p::runner::run_distributed`].
    #[deprecated(
        since = "0.2.0",
        note = "use lmm::engine::RankEngine with BackendSpec::Distributed"
    )]
    pub fn run_distributed(
        graph: &DocGraph,
        config: &DistributedConfig,
    ) -> lmm_p2p::Result<DistributedOutcome> {
        lmm_p2p::runner::run_distributed(graph, config)
    }
}
