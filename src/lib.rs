//! # Layered Markov Model web ranking — facade crate
//!
//! A full reproduction of *Wu & Aberer, "Using a Layered Markov Model for
//! Distributed Web Ranking Computation" (ICDCS 2005)* as a Rust workspace.
//! This crate re-exports every workspace member under one roof so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`linalg`] — sparse/dense matrices, power method, primitivity analysis;
//! * [`rank`] — PageRank, gatekeeper (minimal irreducibility), HITS,
//!   BlockRank, and rank-comparison metrics;
//! * [`graph`] — DocGraph/SiteGraph web-graph substrate and the synthetic
//!   campus-web generator;
//! * [`core`] — the Layered Markov Model: Approaches 1–4, the Partition
//!   Theorem, and the SiteRank × DocRank pipeline;
//! * [`p2p`] — the distributed (peer-to-peer) computation simulator.
//!
//! # Quickstart
//!
//! Rank the paper's 12-state worked example with the decentralized Layered
//! Method and confirm it matches the centralized stationary distribution:
//!
//! ```
//! use lmm::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = lmm::core::worked_example::paper_model()?;
//! let layered = model.layered_method(0.85)?;        // Approach 4
//! let central = model.stationary_of_global(0.85)?;  // Approach 2
//! let diff = lmm::linalg::vec_ops::linf_diff(layered.scores(), central.scores());
//! assert!(diff < 1e-9); // Partition Theorem (Thm. 2)
//! # Ok(())
//! # }
//! ```

pub use lmm_core as core;
pub use lmm_graph as graph;
pub use lmm_linalg as linalg;
pub use lmm_p2p as p2p;
pub use lmm_rank as rank;

/// Commonly used items, importable with `use lmm::prelude::*`.
pub mod prelude {
    pub use lmm_core::{
        approaches::RankApproach, model::LayeredMarkovModel, siterank::LayeredRankConfig,
    };
    pub use lmm_graph::{
        docgraph::{DocGraph, DocGraphBuilder},
        generator::CampusWebConfig,
        sitegraph::{SiteGraph, SiteGraphOptions},
        DocId, SiteId,
    };
    pub use lmm_linalg::{
        CooMatrix, CsrMatrix, DenseMatrix, LinalgError, PowerOptions, StochasticMatrix,
    };
    pub use lmm_rank::{
        pagerank::{PageRank, PageRankConfig},
        ranking::Ranking,
    };
}
